"""Always-on observability: head sampling, the protocol flight recorder,
per-phase latency decomposition, metrics window diffs, and the offline
``python -m repro.obs`` CLI."""

import json

import pytest

from repro.bench.harness import request_reply_point
from repro.core import BindingStyle, Mode
from repro.groupcomm.ordering import AsymmetricOrder
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    Observability,
    TraceConfig,
    Tracer,
    build_trees,
    diff_snapshots,
    read_jsonl,
    render_metrics_table,
    render_timeline,
    write_jsonl,
)
from repro.scenario import run_scenario
from tests.invariants import check_invariants, record_protocol
from tests.test_invariant_sweep import sweep_spec


# ---------------------------------------------------------------------------
# head sampling
# ---------------------------------------------------------------------------
def test_trace_config_validation():
    assert TraceConfig().sample_rate == 1.0
    assert TraceConfig(sample_rate=0.25).sample_rate == 0.25
    with pytest.raises(ValueError):
        TraceConfig(sample_rate=1.5)
    with pytest.raises(ValueError):
        TraceConfig(sample_rate=-0.1)
    with pytest.raises(ValueError):
        TraceConfig(max_spans=-1)


def test_systematic_sampling_is_exact_not_probabilistic():
    tracer = Tracer(enabled=True, config=TraceConfig(sample_rate=0.25))
    verdicts = [tracer.start_span("root", parent=None) is not None for _ in range(8)]
    # an accumulator, not an RNG: exactly rate * n roots survive, and the
    # pattern is the same every run
    assert verdicts.count(True) == 2
    assert tracer.sampled_roots == 2
    assert tracer.unsampled_roots == 6
    again = Tracer(enabled=True, config=TraceConfig(sample_rate=0.25))
    assert verdicts == [again.start_span("r", parent=None) is not None for _ in range(8)]


def test_unsampled_root_suppresses_descendants_but_labels_flow():
    tracer = Tracer(enabled=True, config=TraceConfig(sample_rate=0.0))
    token = tracer.push_label("client", "c0")
    root = tracer.start_span("invoke", parent=None)  # head-sampled out
    assert root is None
    with tracer.use_root(root):
        # downstream of an unsampled root: no spans, even explicit ones
        assert not tracer.recording
        assert tracer.start_span("gc.send") is None
        assert tracer.label("client") == "c0"  # labels keep flowing
        tracer.event("ignored")  # must be a safe no-op
    tracer.restore(token)
    assert tracer.records() == []
    assert tracer.unsampled_roots == 1


def test_sampled_runs_are_deterministic_and_thinner():
    def run(rate):
        obs = Observability(trace=TraceConfig(sample_rate=rate))
        request_reply_point(
            "lan", 2, replicas=3, style=BindingStyle.OPEN,
            mode=Mode.ALL, requests=10, seed=5, obs=obs,
        )
        return obs.trace_records(), obs.metrics_snapshot()

    sampled_a, snap_a = run(0.2)
    sampled_b, snap_b = run(0.2)
    # same seed, same rate -> identical sampled span ids and metrics
    assert sampled_a == sampled_b
    assert snap_a == snap_b
    full, _snap = run(1.0)
    assert 0 < len(sampled_a) < len(full)
    counters = snap_a["counters"]
    assert counters["obs.roots_sampled"] > 0
    assert counters["obs.roots_unsampled"] > counters["obs.roots_sampled"]
    # every sampled invocation still forms a complete connected tree
    roots, children = build_trees(sampled_a)
    ids = {r["span"] for r in sampled_a}
    assert all(s["parent"] is None or s["parent"] in ids for s in sampled_a)
    invoke_roots = [r for r in roots if r["name"] == "invoke"]
    assert invoke_roots
    # sampled invocations keep their causal subtrees (sends held back by a
    # concurrent flush may detach, so "all" would overfit)
    assert any(children.get(r["span"]) for r in invoke_roots)
    names = {s["name"] for s in sampled_a}
    assert {"gc.send", "gc.deliver", "server.execute"} <= names


# ---------------------------------------------------------------------------
# partial traces through the exporters
# ---------------------------------------------------------------------------
def test_span_cap_truncation_round_trips_with_orphans(tmp_path):
    clock = [0.0]
    tracer = Tracer(
        clock=lambda: clock[0], enabled=True, config=TraceConfig(max_spans=2)
    )
    root = tracer.start_span("invoke", parent=None)
    with tracer.use(root):
        kept = tracer.start_span("gc.send")
        dropped = tracer.start_span("net.hop")  # over the cap: not retained
        with tracer.use(dropped):
            orphan = tracer.start_span("gc.deliver")  # parent never exported
    for span in (orphan, dropped, kept, root):
        tracer.end_span(span)
    assert tracer.dropped == 2
    records = tracer.records()
    assert len(records) == 2

    path = tmp_path / "partial.jsonl"
    assert write_jsonl(str(path), records) == 2
    loaded = read_jsonl(str(path))
    assert loaded == json.loads(json.dumps(records))
    # the orphaned child is promoted to a root instead of being lost
    roots, children = build_trees(loaded)
    assert {r["name"] for r in roots} == {"invoke"}
    assert [c["name"] for c in children[root.span_id]] == ["gc.send"]
    assert "invoke" in render_timeline(loaded)

    # the cap is observable: metrics_snapshot surfaces the drop counter
    obs = Observability(trace=TraceConfig(max_spans=2))
    obs.tracer.clock = lambda: 0.0
    for _ in range(3):
        obs.tracer.start_span("s", parent=None)
    assert obs.metrics_snapshot()["counters"]["obs.spans_dropped"] == 1


# ---------------------------------------------------------------------------
# flight recorder
# ---------------------------------------------------------------------------
def test_flight_rings_bound_per_node_and_merge_causally():
    flight = FlightRecorder(capacity=4)
    t = [0.0]
    flight.clock = lambda: t[0]
    for i in range(10):
        t[0] = i * 1e-3
        flight.record("n0", "send", "g", f"m{i}")
        flight.record("n1", "deliver", "g", f"m{i}")
    assert len(flight.events("n0")) == 4  # per-node ring capacity
    merged = flight.events()
    assert [e[0] for e in merged] == sorted(e[0] for e in merged)
    # the interleaving is preserved: send precedes its delivery
    kinds = [(e[2], e[3]) for e in merged]
    assert kinds[0] == ("n0", "send") and kinds[1] == ("n1", "deliver")

    excerpt = flight.excerpt(last=3)
    assert [e["seq"] for e in excerpt] == [e[0] for e in merged[-3:]]
    # the excerpt is JSON-clean and renders identically after a round-trip
    revived = json.loads(json.dumps(excerpt))
    assert FlightRecorder.render_excerpt(revived) == flight.render(last=3)
    assert "flight recorder: last 3 protocol events" in flight.render(last=3)

    flight.clear()
    assert len(flight) == 0
    assert flight.render() == "(flight recorder empty)"


FLIGHT_SPEC = {
    "name": "flight-smoke",
    "seed": 7,
    "topology": "lan",
    "settle": 1.0,
    "group": {"replicas": 3},
    "traffic": {
        "arrivals": {"kind": "poisson", "rate": 2.0},
        "churn": {"initial": 4},
        "duration": 2.0,
        "drain": 20.0,
    },
    "slos": [{"kind": "accounting", "name": "acct"}],
}


def test_failed_slo_report_attaches_causal_flight_excerpt():
    spec = dict(FLIGHT_SPEC)
    spec["slos"] = [
        {"kind": "latency", "name": "impossible", "stat": "p95", "max_ms": 1e-4}
    ]
    report = run_scenario(spec)
    assert not report["passed"]
    excerpt = report["flight_recorder"]
    assert excerpt, "a failing report must carry the protocol flight excerpt"
    seqs = [e["seq"] for e in excerpt]
    assert seqs == sorted(seqs)  # causally ordered
    assert {e["kind"] for e in excerpt} & {"send", "deliver", "ticket"}
    assert len({e["node"] for e in excerpt}) > 1  # merged across nodes
    json.dumps(excerpt)  # report stays JSON-serialisable

    # and a passing run stays lean: no excerpt attached
    assert "flight_recorder" not in run_scenario(FLIGHT_SPEC)


def test_invariant_violation_carries_flight_excerpt(monkeypatch):
    """A mutated protocol must fail post-mortem-first: the checker's output
    ends with the merged flight excerpt of the broken run."""
    original = AsymmetricOrder.on_ticket_batch

    def sabotaged(self, batch):
        batch.tickets = list(reversed(batch.tickets))
        original(self, batch)

    monkeypatch.setattr(AsymmetricOrder, "on_ticket_batch", sabotaged)
    with record_protocol() as record:
        run_scenario(sweep_spec(7, "asymmetric", True, "none"))
    violations = check_invariants(record, total_order=True)
    assert violations
    assert "flight recorder" in violations[-1]
    assert "ticket" in violations[-1]


# ---------------------------------------------------------------------------
# per-phase latency decomposition
# ---------------------------------------------------------------------------
def test_phase_decomposition_reconciles_with_end_to_end_latency():
    # closed-style saturation-ish load: every invocation is decomposed into
    # queue/order/flush/execute/reply and the phase means must tile the
    # end-to-end mean (acceptance bar: within 1%; construction gives 0%)
    spec = {
        "name": "phase-reconcile",
        "seed": 11,
        "topology": "lan",
        "settle": 1.0,
        "group": {"replicas": 3, "style": "closed"},
        "traffic": {
            "arrivals": {"kind": "poisson", "rate": 20.0},
            "churn": {"initial": 6},
            "duration": 2.0,
            "drain": 20.0,
            "mode": "all",
        },
        "slos": [{"kind": "accounting", "name": "acct"}],
    }
    report = run_scenario(spec)
    assert report["passed"]
    breakdown = report["latency_breakdown"]
    assert breakdown is not None
    assert breakdown["end_to_end_mean_ms"] > 0
    assert breakdown["reconciliation_pct"] <= 1.0
    phases = breakdown["phases_ms"]
    assert set(phases) == {"queue", "order", "flush", "execute", "reply"}
    assert all(value >= 0.0 for value in phases.values())
    assert phases["execute"] > 0  # servant cost is never zero
    total = sum(phases.values())
    assert total == pytest.approx(breakdown["sum_of_phase_means_ms"])
    assert total == pytest.approx(breakdown["end_to_end_mean_ms"], rel=0.01)
    # the same decomposition is exported as inv.phase.* histograms
    hists = report["metrics"]["histograms"]
    e2e = hists["client.invoke_latency"]
    for name in phases:
        assert hists[f"inv.phase.{name}"]["count"] == e2e["count"]


def test_peer_workloads_have_no_phase_breakdown():
    report = run_scenario(
        {
            "name": "peer-phases",
            "seed": 3,
            "topology": "lan",
            "settle": 1.5,
            "group": {"replicas": 3, "liveliness": "lively", "suspicion_timeout": 2.0},
            "traffic": {
                "arrivals": {"kind": "poisson", "rate": 0.5},
                "churn": {"initial": 3},
                "duration": 2.0,
                "drain": 20.0,
                "workload": "peer",
                "timeout": 10.0,
            },
            "slos": [{"kind": "accounting", "name": "acct"}],
        }
    )
    assert report["passed"]
    assert report["latency_breakdown"] is None  # no client invocations


def test_scenario_trace_section_enables_sampled_tracing():
    spec = json.loads(json.dumps(FLIGHT_SPEC))
    spec["group"]["trace"] = {"sample_rate": 0.5}
    report = run_scenario(spec)
    counters = report["metrics"]["counters"]
    assert counters["obs.roots_sampled"] > 0
    assert counters["obs.roots_unsampled"] > 0
    assert counters["obs.spans_dropped"] == 0
    # disabled section (or none at all) keeps the seed's trace-off defaults
    spec["group"]["trace"] = {"enabled": False}
    off = run_scenario(spec)
    assert off["metrics"]["counters"]["obs.roots_sampled"] == 0
    assert off["metrics"]["counters"]["obs.roots_unsampled"] == 0
    with pytest.raises(ValueError):
        run_scenario({**spec, "group": {"trace": {"sample_rate": 2.0}}})


# ---------------------------------------------------------------------------
# metrics snapshots: window diffs and table alignment
# ---------------------------------------------------------------------------
def test_snapshot_diff_isolates_the_window():
    registry = MetricsRegistry()
    registry.counter("gc.sent.data").inc(10)
    registry.gauge("depth").set(4.0)
    registry.histogram("lat").record(1.0)
    before = registry.snapshot()
    registry.counter("gc.sent.data").inc(5)
    registry.counter("gc.sent.null").inc(2)  # appears mid-window
    registry.gauge("depth").set(1.5)
    registry.histogram("lat").record(3.0)
    delta = registry.diff(before)
    assert delta["counters"]["gc.sent.data"] == 5
    assert delta["counters"]["gc.sent.null"] == 2
    assert delta["gauges"]["depth"] == -2.5
    window = delta["histograms"]["lat"]
    assert window["count"] == 1
    assert window["mean"] == pytest.approx(3.0)  # window mean, not cumulative
    assert diff_snapshots(before, before)["counters"]["gc.sent.data"] == 0


def test_metrics_table_aligns_negative_and_missing_values():
    registry = MetricsRegistry()
    registry.counter("gc.sent.data").inc(10)
    registry.counter("gc.sent.null").inc(2)
    registry.gauge("depth").set(4.0)
    registry.histogram("lat").record(1.0)
    before = registry.snapshot()
    registry.counter("gc.sent.null").inc(990)
    registry.gauge("depth").set(1.0)
    registry.histogram("lat").record(2.0)
    table = render_metrics_table(registry.diff(before))
    lines = {
        line.strip().split()[0]: line
        for line in table.splitlines()
        if line.startswith("  ")
    }
    # zero and wide deltas end in the same column (right-aligned values)
    assert lines["gc.sent.data"].rstrip().endswith("  0")
    assert lines["gc.sent.null"].rstrip().endswith("990")
    assert len(lines["gc.sent.data"].rstrip()) == len(lines["gc.sent.null"].rstrip())
    assert lines["depth"].rstrip().endswith("-3")
    # window histogram rows carry count+mean; percentiles render as dashes
    assert lines["lat"].count("-") >= 4
    assert "2.000000" in lines["lat"]


# ---------------------------------------------------------------------------
# offline CLI: python -m repro.obs
# ---------------------------------------------------------------------------
def _traced_run(tmp_path):
    obs = Observability(trace=True)
    request_reply_point(
        "lan", 1, replicas=3, style=BindingStyle.OPEN,
        mode=Mode.ALL, requests=3, obs=obs,
    )
    path = tmp_path / "trace.jsonl"
    obs.dump_trace(str(path))
    return obs, path


def test_obs_cli_timeline_and_top(tmp_path, capsys):
    from repro.obs.__main__ import main

    _obs, path = _traced_run(tmp_path)
    assert main(["timeline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "invoke" in out and "--- trace" in out

    records = read_jsonl(str(path))
    one_trace = str(records[0]["trace"])
    assert main(["timeline", str(path), "--trace", one_trace]) == 0
    out = capsys.readouterr().out
    assert out.count("--- trace") == 1
    assert main(["timeline", str(path), "--trace", "nonexistent"]) == 1

    assert main(["top", str(path), "--limit", "5"]) == 0
    out = capsys.readouterr().out
    assert "span" in out and "total_ms" in out
    assert "gc.send" in out or "net.hop" in out
    assert len([l for l in out.splitlines() if l and not l.startswith("(")]) <= 6


def test_obs_cli_diff(tmp_path, capsys):
    from repro.obs.__main__ import main

    registry = MetricsRegistry()
    registry.counter("gc.sent.data").inc(3)
    before = tmp_path / "before.json"
    before.write_text(json.dumps(registry.snapshot()))
    registry.counter("gc.sent.data").inc(4)
    after = tmp_path / "after.json"
    after.write_text(json.dumps(registry.snapshot()))
    assert main(["diff", str(before), str(after)]) == 0
    out = capsys.readouterr().out
    assert "gc.sent.data" in out and "7" not in out.split() and "4" in out.split()


def test_obs_cli_flight_renders_report_excerpt(tmp_path, capsys):
    from repro.obs.__main__ import main

    spec = dict(FLIGHT_SPEC)
    spec["slos"] = [
        {"kind": "latency", "name": "impossible", "stat": "p95", "max_ms": 1e-4}
    ]
    report = run_scenario(spec)
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report))
    assert main(["flight", str(path)]) == 0
    out = capsys.readouterr().out
    assert "flight recorder: last" in out

    passing = tmp_path / "ok.json"
    passing.write_text(json.dumps(run_scenario(FLIGHT_SPEC)))
    assert main(["flight", str(passing)]) == 1


def test_obs_cli_timeline_attr_filter(tmp_path, capsys):
    from repro.obs.__main__ import main

    records = [
        {"trace": 1, "span": 1, "parent": None, "name": "invoke", "node": "c0",
         "start": 0.0, "end": 1e-3, "attrs": {"shard": "s0", "op": "put"}},
        {"trace": 1, "span": 2, "parent": 1, "name": "gc.send", "node": "c0",
         "start": 0.0, "end": 5e-4},
        {"trace": 2, "span": 3, "parent": None, "name": "invoke", "node": "c0",
         "start": 2e-3, "end": 3e-3, "attrs": {"shard": "s1"}},
    ]
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
    assert main(["timeline", str(path), "--attr", "shard=s1"]) == 0
    out = capsys.readouterr().out
    assert out.count("--- trace") == 1 and "shard=s1" in out
    # children of a matching trace ride along even without the attr
    assert main(["timeline", str(path), "--attr", "shard=s0"]) == 0
    out = capsys.readouterr().out
    assert "gc.send" in out and "shard=s1" not in out
    assert main(["timeline", str(path), "--attr", "shard=nope"]) == 1
    with pytest.raises(SystemExit):
        main(["timeline", str(path), "--attr", "malformed"])


def test_obs_cli_flight_shard_group_node_filters(tmp_path, capsys):
    from repro.obs.__main__ import main

    excerpt = [
        {"seq": 1, "t": 0.01, "node": "s0", "kind": "view",
         "group": "svc:kv#0", "detail": ""},
        {"seq": 2, "t": 0.02, "node": "s1", "kind": "send",
         "group": "svc:kv#1", "detail": "gseq=1"},
        {"seq": 3, "t": 0.03, "node": "c0", "kind": "deliver",
         "group": "cs:c0:kv#1:2", "detail": ""},
        {"seq": 4, "t": 0.04, "node": "s0", "kind": "send",
         "group": "svc:kv", "detail": ""},
    ]
    path = tmp_path / "excerpt.json"
    path.write_text(json.dumps(excerpt))
    # --shard matches the shard's svc group and its cs groups, nothing else
    assert main(["flight", str(path), "--shard", "1"]) == 0
    out = capsys.readouterr().out
    assert "svc:kv#1" in out and "cs:c0:kv#1:2" in out
    assert "svc:kv#0" not in out and "svc:kv:send" not in out
    assert main(["flight", str(path), "--group", "kv#0"]) == 0
    out = capsys.readouterr().out
    assert "svc:kv#0" in out and "kv#1" not in out
    assert main(["flight", str(path), "--node", "c0"]) == 0
    out = capsys.readouterr().out
    assert "cs:c0:kv#1:2" in out and "svc:kv#0" not in out
    assert main(["flight", str(path), "--shard", "7"]) == 1


# ---------------------------------------------------------------------------
# bench CLI flag
# ---------------------------------------------------------------------------
def test_bench_cli_trace_sample_flag(tmp_path, capsys, monkeypatch):
    from repro.bench.__main__ import main

    monkeypatch.setenv("REPRO_BENCH_REPORT", str(tmp_path / "report.txt"))
    full_path = tmp_path / "full.jsonl"
    assert main(["table1", "--trace", str(full_path)]) == 0
    capsys.readouterr()
    sampled_path = tmp_path / "sampled.jsonl"
    # --trace-sample implies --trace (default trace.jsonl), here explicit
    assert main(
        ["table1", "--trace", str(sampled_path), "--trace-sample", "0.1"]
    ) == 0
    capsys.readouterr()
    full = read_jsonl(str(full_path))
    sampled = read_jsonl(str(sampled_path))
    assert 0 < len(sampled) < len(full)
    with pytest.raises(SystemExit):
        main(["table1", "--trace-sample", "1.5"])
