"""Smoke tests for the benchmark harness (small parameters)."""

import pytest

from repro.bench import (
    Environment,
    LatencySample,
    Point,
    Series,
    corba_baseline,
    format_graph,
    format_table,
    peer_point,
    request_reply_point,
    summarize,
)
from repro.bench.env import REQUEST_REPLY_CONFIGS, _client_site, _server_site
from repro.core import BindingStyle, Mode
from repro.groupcomm import Ordering


class TestStats:
    def test_summarize_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["count"] == 4
        assert stats["mean"] == 2.5
        assert stats["median"] == 2.5
        assert stats["min"] == 1.0 and stats["max"] == 4.0

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0

    def test_latency_sample_ms(self):
        sample = LatencySample()
        sample.add(0.001)
        sample.add(0.003)
        assert sample.mean_ms == pytest.approx(2.0)

    def test_series_and_points(self):
        series = Series("x")
        series.add(Point(1, 2.0, 100.0))
        series.add(Point(2, 3.0, 150.0))
        assert series.latency_curve() == [(1, 2.0), (2, 3.0)]
        assert series.throughput_curve() == [(1, 100.0), (2, 150.0)]
        assert series.at(2).latency_ms == 3.0
        assert series.at(9) is None


class TestReport:
    def test_format_table(self):
        text = format_table(["a", "b"], [(1, 2.5), ("x", 100.0)], title="T")
        assert "T" in text and "2.50" in text and "100" in text

    def test_format_graph_merges_series(self):
        s1, s2 = Series("one"), Series("two")
        s1.add(Point(1, 5.0, 10.0))
        s2.add(Point(2, 7.0, 20.0))
        text = format_graph("G", [s1, s2], metric="latency")
        assert "one" in text and "two" in text and "-" in text


class TestEnvironment:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            Environment(config="moon")
        for config in REQUEST_REPLY_CONFIGS:
            Environment(config=config)

    def test_site_placement(self):
        assert _server_site("lan", 2) == "newcastle"
        assert _server_site("mixed", 1) == "newcastle"
        assert _server_site("wan", 1) == "london"
        assert _client_site("lan", 0) == "newcastle"
        assert {_client_site("mixed", i) for i in range(4)} == {"london", "pisa"}
        # wan clients are offset from same-index servers
        assert _client_site("wan", 0) != _server_site("wan", 0)

    def test_serve_replicas(self):
        from repro.apps import RandomNumberServant

        env = Environment(config="lan", seed=5)
        servers = env.serve_replicas("svc", RandomNumberServant, 2)
        assert len(servers) == 2
        assert set(servers[0].members) == {"s0", "s1"}


class TestHarnessSmoke:
    def test_corba_baseline_lan_faster_than_wan(self):
        lan = corba_baseline("newcastle", "newcastle", requests=30)
        wan = corba_baseline("pisa", "newcastle", requests=30)
        assert lan.latency_ms < wan.latency_ms
        assert lan.throughput > wan.throughput

    def test_request_reply_point_smoke(self):
        point = request_reply_point(
            "lan",
            2,
            replicas=2,
            style=BindingStyle.OPEN,
            mode=Mode.FIRST,
            requests=10,
        )
        assert point.latency_ms > 0
        assert point.throughput > 0
        assert point.detail["errors"] == 0
        assert point.detail["requests"] == 20

    def test_peer_point_smoke(self):
        point = peer_point("lan", 3, Ordering.SYMMETRIC, multicasts=8)
        assert point.latency_ms > 0
        assert point.throughput > 0
