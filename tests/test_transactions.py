"""Tests for transactional replicated objects (the ref-[16] extension)."""

import pytest

from repro.apps.transactions import (
    Transaction,
    TransactionClient,
    TransactionalStoreServant,
    TxAborted,
)
from repro.core import BindingStyle, Mode
from repro.sim import run_process, spawn
from tests.core_helpers import AppCluster


# ---------------------------------------------------------------------------
# servant in isolation
# ---------------------------------------------------------------------------
class TestServant:
    def test_versioned_reads(self):
        s = TransactionalStoreServant()
        assert s.get_versioned("x") == (None, 0)
        s.tx_commit({}, {"x": 10})
        assert s.get_versioned("x") == (10, 1)

    def test_commit_validates_versions(self):
        s = TransactionalStoreServant()
        s.tx_commit({}, {"x": 1})
        ok, versions = s.tx_commit({"x": 1}, {"x": 2})
        assert ok and versions == {"x": 2}
        # stale read: expected version 1, actual 2
        ok, versions = s.tx_commit({"x": 1}, {"x": 99})
        assert not ok and versions == {"x": 2}
        assert s.get_versioned("x")[0] == 2
        assert s.commits == 2 and s.aborts == 1

    def test_multi_key_atomicity(self):
        s = TransactionalStoreServant()
        s.tx_commit({}, {"a": 1, "b": 2})
        # conflict on b must leave a untouched as well
        ok, _ = s.tx_commit({"a": 1, "b": 99}, {"a": 10, "b": 20})
        assert not ok
        assert s.get_versioned("a") == (1, 1)
        assert s.get_versioned("b") == (2, 1)

    def test_state_transfer(self):
        s = TransactionalStoreServant()
        s.tx_commit({}, {"a": 1})
        clone = TransactionalStoreServant()
        clone.set_state(s.get_state())
        assert clone.checksum() == s.checksum()
        assert clone.commits == 1


# ---------------------------------------------------------------------------
# transactions over the real replicated stack
# ---------------------------------------------------------------------------
def build_stack(clients=2):
    c = AppCluster(servers=3, clients=clients)
    servers = c.serve_all("bank", TransactionalStoreServant)
    tx_clients = []
    for i in range(clients):
        binding = c.client(i).bind("bank", style=BindingStyle.CLOSED)
        c.run(0.5)
        assert binding.ready.done
        tx_clients.append(TransactionClient(binding))
    return c, servers, tx_clients


def test_commit_applies_at_every_replica():
    c, servers, (client,) = build_stack(clients=1)

    def proc():
        tx = client.begin()
        balance = yield tx.read("alice")
        assert balance is None
        tx.write("alice", 100)
        versions = yield tx.commit(mode=Mode.ALL)
        return versions

    versions = run_process(c.sim, proc(), until=c.sim.now + 5.0)
    assert versions == {"alice": 1}
    c.run(1.0)
    assert all(s.servant.get_versioned("alice") == (100, 1) for s in servers)
    digests = {s.servant.checksum() for s in servers}
    assert len(digests) == 1


def test_stale_read_aborts():
    c, servers, (client,) = build_stack(clients=1)

    def proc():
        tx1 = client.begin()
        yield tx1.read("x")  # version 0
        # another transaction commits first
        tx2 = client.begin()
        tx2.write("x", 5)
        yield tx2.commit()
        tx1.write("x", 9)
        try:
            yield tx1.commit()
        except TxAborted:
            return "aborted"
        return "committed"

    assert run_process(c.sim, proc(), until=c.sim.now + 5.0) == "aborted"
    c.run(1.0)
    assert all(s.servant.get_versioned("x")[0] == 5 for s in servers)


def test_conflicting_clients_exactly_one_wins():
    c, servers, clients = build_stack(clients=2)

    def contender(tx_client, value):
        def proc():
            tx = tx_client.begin()
            yield tx.read("slot")  # both read version 0
            tx.write("slot", value)
            try:
                yield tx.commit(mode=Mode.ALL)
                return ("committed", value)
            except TxAborted:
                return ("aborted", value)
        return proc()

    p0 = spawn(c.sim, contender(clients[0], "first"))
    p1 = spawn(c.sim, contender(clients[1], "second"))
    c.run(5.0)
    outcomes = {p0.result()[0], p1.result()[0]}
    assert outcomes == {"committed", "aborted"}
    # replicas agree on the single winner
    values = {s.servant.get_versioned("slot")[0] for s in servers}
    assert len(values) == 1


def test_retry_helper_eventually_commits():
    c, servers, clients = build_stack(clients=2)

    # client 1 keeps bumping the counter to induce conflicts
    def churner():
        for _ in range(3):
            tx = clients[1].begin()
            value = yield tx.read("counter")
            tx.write("counter", (value or 0) + 1)
            try:
                yield tx.commit()
            except TxAborted:
                pass

    def body(tx):
        value = yield tx.read("counter")
        tx.write("counter", (value or 0) + 10)

    spawn(c.sim, churner())
    outcome = clients[0].run(5, body)
    c.run(10.0)
    assert outcome.done and not outcome.failed
    c.run(1.0)
    digests = {s.servant.checksum() for s in servers}
    assert len(digests) == 1


def test_abort_discards_local_writes():
    c, servers, (client,) = build_stack(clients=1)
    tx = client.begin()
    tx.write("ghost", 1)
    tx.abort()
    with pytest.raises(TxAborted):
        tx.write("ghost", 2)
    c.run(1.0)
    assert all(s.servant.get_versioned("ghost") == (None, 0) for s in servers)


def test_read_your_own_writes_within_transaction():
    c, servers, (client,) = build_stack(clients=1)

    def proc():
        tx = client.begin()
        tx.write("k", "mine")
        value = yield tx.read("k")
        return value

    assert run_process(c.sim, proc(), until=c.sim.now + 5.0) == "mine"
