"""Tests for futures and generator-based processes."""

import pytest

from repro.sim import (
    Future,
    FutureError,
    SimTimeout,
    Simulator,
    all_of,
    any_of,
    run_process,
    sleep,
    spawn,
    with_timeout,
)


def test_future_resolve_and_result():
    fut = Future()
    assert not fut.done
    fut.resolve(42)
    assert fut.done and fut.successful
    assert fut.result() == 42


def test_future_double_resolve_raises():
    fut = Future()
    fut.resolve(1)
    with pytest.raises(FutureError):
        fut.resolve(2)


def test_future_premature_result_raises():
    with pytest.raises(FutureError):
        Future().result()


def test_future_failure_reraises():
    fut = Future()
    fut.fail(ValueError("boom"))
    assert fut.failed
    with pytest.raises(ValueError):
        fut.result()


def test_try_resolve_is_idempotent():
    fut = Future()
    assert fut.try_resolve(1)
    assert not fut.try_resolve(2)
    assert fut.result() == 1


def test_callback_fires_immediately_when_already_done():
    fut = Future()
    fut.resolve("x")
    seen = []
    fut.add_done_callback(lambda f: seen.append(f.result()))
    assert seen == ["x"]


def test_process_sleep_advances_time():
    sim = Simulator()

    def proc():
        yield sleep(sim, 1.5)
        return sim.now

    assert run_process(sim, proc()) == 1.5


def test_process_returns_value():
    sim = Simulator()

    def proc():
        yield sleep(sim, 0.1)
        return "done"

    assert run_process(sim, proc()) == "done"


def test_process_can_await_process():
    sim = Simulator()

    def child():
        yield sleep(sim, 1.0)
        return 10

    def parent():
        value = yield spawn(sim, child())
        return value + 1

    assert run_process(sim, parent()) == 11


def test_process_exception_propagates_to_future():
    sim = Simulator()

    def proc():
        yield sleep(sim, 0.1)
        raise RuntimeError("inner")

    p = spawn(sim, proc())
    sim.run()
    assert p.failed
    with pytest.raises(RuntimeError):
        p.result()


def test_failed_future_is_thrown_into_generator():
    sim = Simulator()
    fut = Future()
    sim.schedule(1.0, fut.fail, ValueError("remote"))

    def proc():
        try:
            yield fut
        except ValueError as exc:
            return f"caught {exc}"

    assert run_process(sim, proc()) == "caught remote"


def test_yielding_non_future_fails_process():
    sim = Simulator()

    def proc():
        yield 42

    p = spawn(sim, proc())
    sim.run()
    assert p.failed and isinstance(p.exception, TypeError)


def test_yield_already_done_future_continues_synchronously():
    sim = Simulator()
    fut = Future()
    fut.resolve(5)

    def proc():
        v = yield fut
        return v

    assert run_process(sim, proc()) == 5


def test_all_of_gathers_in_order():
    sim = Simulator()
    futs = [Future() for _ in range(3)]
    sim.schedule(3.0, futs[0].resolve, "a")
    sim.schedule(1.0, futs[1].resolve, "b")
    sim.schedule(2.0, futs[2].resolve, "c")

    def proc():
        values = yield all_of(futs)
        return values

    assert run_process(sim, proc()) == ["a", "b", "c"]


def test_all_of_empty():
    sim = Simulator()

    def proc():
        values = yield all_of([])
        return values

    assert run_process(sim, proc()) == []


def test_all_of_fails_fast():
    sim = Simulator()
    futs = [Future(), Future()]
    sim.schedule(1.0, futs[1].fail, ValueError("nope"))
    combined = all_of(futs)
    sim.run()
    assert combined.failed


def test_any_of_returns_first():
    sim = Simulator()
    futs = [Future(), Future()]
    sim.schedule(2.0, futs[0].resolve, "slow")
    sim.schedule(1.0, futs[1].resolve, "fast")

    def proc():
        index, value = yield any_of(futs)
        return index, value

    assert run_process(sim, proc()) == (1, "fast")


def test_any_of_fails_only_when_all_fail():
    sim = Simulator()
    futs = [Future(), Future()]
    sim.schedule(1.0, futs[0].fail, ValueError("a"))
    sim.schedule(2.0, futs[1].fail, ValueError("b"))
    combined = any_of(futs)
    sim.run()
    assert combined.failed


def test_with_timeout_fires():
    sim = Simulator()
    fut = Future()
    wrapped = with_timeout(sim, fut, 1.0)
    sim.run()
    assert wrapped.failed and isinstance(wrapped.exception, SimTimeout)


def test_with_timeout_passes_value_through():
    sim = Simulator()
    fut = Future()
    sim.schedule(0.5, fut.resolve, 99)
    wrapped = with_timeout(sim, fut, 1.0)
    sim.run()
    assert wrapped.result() == 99


def test_run_process_raises_if_unfinished():
    sim = Simulator()

    def proc():
        yield Future()  # never resolves

    with pytest.raises(RuntimeError):
        run_process(sim, proc(), until=10.0)
