"""Membership edge cases: concurrent changes, flush timeouts, stale traffic."""

import pytest

from repro.groupcomm import GroupConfig, Liveliness, Ordering
from tests.conftest import Cluster, Collector
from tests.test_groupcomm_basic import build_group

LIVELY_FAST = dict(
    liveliness=Liveliness.LIVELY, silence_period=20e-3, suspicion_timeout=100e-3
)


def test_concurrent_joins_converge():
    c = Cluster(5)
    c.service(0).create_group("g", GroupConfig())
    joiners = [c.services[f"n{i}"].join_group("g", "n0") for i in range(1, 5)]
    c.run(3.0)
    views = [c.services[name].session("g").view for name in c.names]
    assert all(v is not None for v in views)
    assert len({(v.view_id, tuple(v.members)) for v in views}) == 1
    assert set(views[0].members) == set(c.names)
    assert all(j.joined.done for j in joiners)


def test_join_and_leave_interleaved():
    c = Cluster(4)
    sessions = build_group(c, GroupConfig(), members=["n0", "n1", "n2"])
    # n2 leaves while n3 joins
    late = c.services["n3"].join_group("g", "n0")
    sessions[2].leave()
    c.run(3.0)
    final = c.services["n0"].session("g").view
    assert set(final.members) == {"n0", "n1", "n3"}
    assert late.joined.done
    assert sessions[2].state == "closed"


def test_simultaneous_crashes_of_two_members():
    c = Cluster(5)
    sessions = build_group(c, GroupConfig(**LIVELY_FAST))
    c.net.crash("n3")
    c.net.crash("n4")
    c.run(3.0)
    survivors = sessions[:3]
    assert all(set(s.view.members) == {"n0", "n1", "n2"} for s in survivors)
    assert len({s.view.view_id for s in survivors}) == 1


def test_crash_of_joiner_during_join():
    c = Cluster(3)
    build_group(c, GroupConfig(**LIVELY_FAST), members=["n0", "n1"])
    c.services["n2"].join_group("g", "n0")
    c.sim.schedule(5e-4, c.net.crash, "n2")  # dies mid-handshake
    c.run(3.0)
    view = c.services["n0"].session("g").view
    # the group either never admitted n2 or removed it again
    assert "n2" not in view.members or len(view.members) == 2


def test_whole_group_leaves_gracefully():
    c = Cluster(3)
    sessions = build_group(c, GroupConfig())
    for s in sessions:
        s.leave()
    c.run(3.0)
    assert all(s.state == "closed" for s in sessions)
    assert all(c.services[n].session("g") is None for n in c.names)


def test_stale_data_from_old_view_is_dropped():
    from repro.groupcomm.messages import DataMsg, KIND_DATA

    c = Cluster(2)
    sessions = build_group(c, GroupConfig())
    col = Collector(sessions[1])
    current_view = sessions[1].view.view_id
    stale = DataMsg("g", "n0", current_view - 1, 1, 99, KIND_DATA, "ghost", None, None, {})
    sessions[1].on_data("n0", stale)
    c.run(0.5)
    assert ("n0", "ghost") not in col.deliveries


def test_view_ids_strictly_increase():
    c = Cluster(4)
    config = GroupConfig(**LIVELY_FAST)
    sessions = build_group(c, config)
    observed = []
    sessions[0].on_view = lambda v, j, l: observed.append(v.view_id)
    c.services["n3"].drop_session("g")
    sessions_late = c.services["n3"].join_group("g", "n0")
    c.run(2.0)
    c.net.crash("n1")
    c.run(2.0)
    assert observed == sorted(observed)
    assert len(set(observed)) == len(observed)


def test_flush_timeout_removes_unresponsive_member():
    """A member that dies exactly when a flush starts is dropped by the
    coordinator's flush timeout rather than blocking the view change."""
    c = Cluster(4)
    config = GroupConfig(
        liveliness=Liveliness.LIVELY,
        silence_period=20e-3,
        suspicion_timeout=150e-3,
        flush_timeout=100e-3,
    )
    sessions = build_group(c, config)
    # trigger a membership change (n3 leaves) and kill n2 at the same time,
    # so the flush for n3's departure stalls on n2
    sessions[3].leave()
    c.net.crash("n2")
    c.run(5.0)
    final = c.services["n0"].session("g").view
    assert set(final.members) == {"n0", "n1"}
    assert c.services["n1"].session("g").view == final


def test_delivery_continues_across_churn():
    c = Cluster(4)
    config = GroupConfig(ordering=Ordering.ASYMMETRIC, **LIVELY_FAST)
    sessions = build_group(c, config)
    col0, col1 = Collector(sessions[0]), Collector(sessions[1])
    for i in range(5):
        sessions[0].send(f"a{i}")
    c.run(1.0)
    c.net.crash("n3")
    c.run(1.0)
    for i in range(5):
        sessions[1].send(f"b{i}")
    c.run(2.0)
    assert col0.deliveries == col1.deliveries
    assert len(col0.deliveries) == 10
