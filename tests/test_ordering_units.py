"""Direct unit tests of the ordering strategies and delivery mergers."""

import pytest

from repro.groupcomm.merger import SharedClockMerger, TicketMerger
from repro.groupcomm.messages import DataMsg, KIND_DATA, KIND_NULL, TicketMsg
from repro.groupcomm.ordering import (
    AsymmetricOrder,
    CausalOrder,
    FifoOrder,
    SymmetricOrder,
    make_ordering,
)
from repro.groupcomm.views import GroupView


class StubService:
    def __init__(self):
        self.clock_merger = SharedClockMerger()
        self.ticket_merger = TicketMerger()
        self._ticket = 0

    def next_ticket(self):
        self._ticket += 1
        return self._ticket


class StubSession:
    """Just enough session surface to drive a strategy directly."""

    def __init__(self, member_id, members, service=None):
        self.member_id = member_id
        self.view = GroupView("g", 1, members)
        self.service = service or StubService()
        self.delivered = []
        self.announced = []
        self.ordering = None

    @property
    def sequencer(self):
        return self.view.members[0]

    def _cleared(self, msg, key):
        if self.ordering is not None and self.ordering.name == "symmetric":
            self.service.clock_merger.push(self, msg, key)
            self.service.clock_merger.drain()
        else:
            self._deliver_app(msg)

    def _deliver_app(self, msg):
        self.delivered.append((msg.sender, msg.payload))

    def _enqueue_ticket(self, ticket, key):
        self.service.ticket_merger.enqueue(self.sequencer, self, ticket, key)

    def _announce_ticket(self, ticket, key):
        self.announced.append((ticket, key))

    def _drain_tickets(self):
        self.service.ticket_merger.drain()


def data(group, sender, gseq, ts, payload=None, kind=KIND_DATA, ticket=None, vector=None):
    return DataMsg(group, sender, 1, gseq, ts, kind, payload or f"{sender}#{gseq}", ticket, vector, {})


def make(session, name):
    strategy = make_ordering(name, session)
    session.ordering = strategy
    session.service.clock_merger.register(session)
    return strategy


# ---------------------------------------------------------------------------
# symmetric
# ---------------------------------------------------------------------------
class TestSymmetric:
    def test_waits_for_later_stamp_from_sender(self):
        s = StubSession("b", ["a", "b", "c"])
        sym = make(s, "symmetric")
        sym.on_data(data("g", "a", 1, ts=5))
        # c has a later stamp but a's own later stamp is missing
        sym.on_data(data("g", "c", 0, ts=9, kind=KIND_NULL))
        assert s.delivered == []
        sym.on_data(data("g", "a", 0, ts=6, kind=KIND_NULL))
        assert s.delivered == [("a", "a#1")]

    def test_delivery_in_timestamp_order(self):
        s = StubSession("me", ["me", "a", "b"])
        sym = make(s, "symmetric")
        sym.on_data(data("g", "b", 1, ts=7))
        sym.on_data(data("g", "a", 1, ts=3))
        sym.on_data(data("g", "a", 0, ts=10, kind=KIND_NULL))
        sym.on_data(data("g", "b", 0, ts=11, kind=KIND_NULL))
        assert [p for _s, p in s.delivered] == ["a#1", "b#1"]

    def test_tie_broken_by_sender_id(self):
        s = StubSession("me", ["me", "a", "b"])
        sym = make(s, "symmetric")
        sym.on_data(data("g", "b", 1, ts=5))
        sym.on_data(data("g", "a", 1, ts=5))
        sym.on_data(data("g", "a", 0, ts=9, kind=KIND_NULL))
        sym.on_data(data("g", "b", 0, ts=9, kind=KIND_NULL))
        assert [p for _s, p in s.delivered] == ["a#1", "b#1"]

    def test_frontier_key_lower_bound(self):
        s = StubSession("me", ["me", "a"])
        sym = make(s, "symmetric")
        assert sym.frontier_key() == (1, "")  # nothing heard from a
        sym.on_data(data("g", "a", 0, ts=4, kind=KIND_NULL))
        assert sym.frontier_key() == (5, "")

    def test_finalize_orders_remaining(self):
        s = StubSession("me", ["me", "a", "b"])
        sym = make(s, "symmetric")
        sym.on_data(data("g", "a", 1, ts=6))
        union = [data("g", "b", 1, ts=4), data("g", "a", 1, ts=6)]
        remaining = sym.finalize(union, [])
        assert [m.payload for m in remaining] == ["b#1", "a#1"]

    def test_finalize_respects_frontier(self):
        s = StubSession("me", ["me", "a", "b"])
        sym = make(s, "symmetric")
        sym.on_data(data("g", "a", 1, ts=2))
        sym.on_data(data("g", "a", 0, ts=5, kind=KIND_NULL))
        sym.on_data(data("g", "b", 0, ts=5, kind=KIND_NULL))
        assert s.delivered  # (2, a) delivered
        remaining = sym.finalize([data("g", "a", 1, ts=2), data("g", "b", 1, ts=9)], [])
        assert [m.payload for m in remaining] == ["b#1"]


# ---------------------------------------------------------------------------
# asymmetric
# ---------------------------------------------------------------------------
class TestAsymmetric:
    def test_sequencer_assigns_and_announces(self):
        s = StubSession("seq", ["seq", "x"])
        asym = make(s, "asymmetric")
        asym.on_data(data("g", "x", 1, ts=3))
        assert s.announced == [(1, ("x", 1))]
        assert s.delivered == [("x", "x#1")]

    def test_member_waits_for_ticket(self):
        s = StubSession("x", ["seq", "x"])
        asym = make(s, "asymmetric")
        asym.on_data(data("g", "seq", 1, ts=3))  # no embedded ticket
        assert s.delivered == []
        asym.on_ticket(TicketMsg("g", "seq", 1, 1, "seq", 1))
        assert s.delivered == [("seq", "seq#1")]

    def test_embedded_ticket_delivers_immediately(self):
        s = StubSession("x", ["seq", "x"])
        asym = make(s, "asymmetric")
        asym.on_data(data("g", "seq", 1, ts=3, ticket=7))
        assert s.delivered == [("seq", "seq#1")]

    def test_ticket_order_respected_even_if_data_lags(self):
        s = StubSession("x", ["seq", "x", "y"])
        asym = make(s, "asymmetric")
        # tickets 1 (y's msg) then 2 (seq's msg); y's data arrives last
        asym.on_ticket(TicketMsg("g", "seq", 1, 1, "y", 1))
        asym.on_data(data("g", "seq", 1, ts=5, ticket=2))
        assert s.delivered == []  # ticket 1's data still missing
        asym.on_data(data("g", "y", 1, ts=4))
        assert [p for _s, p in s.delivered] == ["y#1", "seq#1"]

    def test_finalize_ticketed_then_unticketed(self):
        s = StubSession("x", ["seq", "x", "y"])
        asym = make(s, "asymmetric")
        union = [
            data("g", "y", 1, ts=9),          # unticketed
            data("g", "seq", 1, ts=2, ticket=4),
            data("g", "seq", 2, ts=3, ticket=5),
        ]
        remaining = asym.finalize(union, [(4, "seq", 1), (5, "seq", 2)])
        assert [m.payload for m in remaining] == ["seq#1", "seq#2", "y#1"]

    def test_nulls_ignored(self):
        s = StubSession("x", ["seq", "x"])
        asym = make(s, "asymmetric")
        asym.on_data(data("g", "seq", 0, ts=3, kind=KIND_NULL))
        assert asym.pending_count() == 0


# ---------------------------------------------------------------------------
# causal / fifo
# ---------------------------------------------------------------------------
class TestCausal:
    def test_buffered_until_causally_ready(self):
        s = StubSession("c", ["a", "b", "c"])
        causal = make(s, "causal")
        # b's message depends on a's first message
        causal.on_data(data("g", "b", 1, ts=2, vector={"a": 1, "b": 1}))
        assert s.delivered == []
        causal.on_data(data("g", "a", 1, ts=1, vector={"a": 1}))
        assert [p for _s, p in s.delivered] == ["a#1", "b#1"]

    def test_per_sender_fifo_within_causal(self):
        s = StubSession("c", ["a", "c"])
        causal = make(s, "causal")
        causal.on_data(data("g", "a", 2, ts=2, vector={"a": 2}))
        assert s.delivered == []
        causal.on_data(data("g", "a", 1, ts=1, vector={"a": 1}))
        assert [p for _s, p in s.delivered] == ["a#1", "a#2"]


class TestFifo:
    def test_immediate_delivery(self):
        s = StubSession("b", ["a", "b"])
        fifo = make(s, "fifo")
        fifo.on_data(data("g", "a", 1, ts=9))
        fifo.on_data(data("g", "a", 2, ts=2))
        assert [p for _s, p in s.delivered] == ["a#1", "a#2"]


def test_make_ordering_rejects_unknown():
    with pytest.raises(ValueError):
        make_ordering("wavy", None)


# ---------------------------------------------------------------------------
# mergers
# ---------------------------------------------------------------------------
class TestSharedClockMerger:
    def test_cross_session_order(self):
        service = StubService()
        s1 = StubSession("me", ["me", "a"], service)
        s2 = StubSession("me", ["me", "b"], service)
        sym1, sym2 = make(s1, "symmetric"), make(s2, "symmetric")
        # session 2 receives ts 5 (deliverable after b's null), session 1 ts 3
        sym2.on_data(data("g2", "b", 1, ts=5))
        sym1.on_data(data("g1", "a", 1, ts=3))
        sym1.on_data(data("g1", "a", 0, ts=9, kind=KIND_NULL))
        sym2.on_data(data("g2", "b", 0, ts=9, kind=KIND_NULL))
        service.clock_merger.drain()
        combined = s1.delivered + s2.delivered
        # ts 3 (g1) delivered before ts 5 (g2)
        assert ("a", "a#1") in s1.delivered and ("b", "b#1") in s2.delivered

    def test_gating_holds_back_later_message(self):
        service = StubService()
        s1 = StubSession("me", ["me", "a"], service)
        s2 = StubSession("me", ["me", "b"], service)
        sym1, sym2 = make(s1, "symmetric"), make(s2, "symmetric")
        # g1 has a PENDING earlier message (ts 3, not yet deliverable)
        sym1.on_data(data("g1", "a", 1, ts=3))
        # g2 clears a later message (ts 5)
        sym2.on_data(data("g2", "b", 1, ts=5))
        sym2.on_data(data("g2", "b", 0, ts=9, kind=KIND_NULL))
        service.clock_merger.drain()
        assert s2.delivered == []  # gated by g1's pending ts-3 message
        sym1.on_data(data("g1", "a", 0, ts=9, kind=KIND_NULL))
        service.clock_merger.drain()
        assert s1.delivered == [("a", "a#1")]
        assert s2.delivered == [("b", "b#1")]

    def test_unregister_purges_entries(self):
        service = StubService()
        s1 = StubSession("me", ["me", "a"], service)
        sym1 = make(s1, "symmetric")
        service.clock_merger.push(s1, data("g1", "a", 1, ts=1), (1, "a"))
        service.clock_merger.unregister(s1)
        assert service.clock_merger.queued_count() == 0


class TestTicketMerger:
    def test_purge_drops_session_entries(self):
        service = StubService()
        s = StubSession("x", ["seq", "x"], service)
        asym = make(s, "asymmetric")
        asym.on_ticket(TicketMsg("g", "seq", 1, 1, "y", 1))  # data never comes
        assert service.ticket_merger.queued_count() == 1
        service.ticket_merger.purge(s)
        assert service.ticket_merger.queued_count() == 0
