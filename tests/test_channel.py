"""Unit tests for the reliable FIFO channel layer (with a fake transport)."""

from typing import List, Tuple

from repro.groupcomm.channel import ACK_EVERY, ChannelManager
from repro.groupcomm.messages import ChanAck, ChanData, ChanNack
from repro.sim import Simulator


class Pipe:
    """Connects two ChannelManagers with controllable delivery."""

    def __init__(self, sim, loss_seqs=None):
        self.sim = sim
        self.loss_seqs = set(loss_seqs or [])  # ChanData seqs to drop once
        self.a = None
        self.b = None
        self.delivered_a: List = []
        self.delivered_b: List = []
        self.a = ChannelManager(sim, "a", self._send_from("a"), lambda p, m: self.delivered_a.append(m))
        self.b = ChannelManager(sim, "b", self._send_from("b"), lambda p, m: self.delivered_b.append(m))

    def _send_from(self, src):
        def transport(peer, message):
            if (
                isinstance(message, ChanData)
                and (src, message.seq) in self.loss_seqs
            ):
                self.loss_seqs.discard((src, message.seq))
                return
            target = self.b if peer == "b" else self.a
            self.sim.schedule(1e-3, target.on_message, src, message)

        return transport


def test_in_order_delivery():
    sim = Simulator()
    pipe = Pipe(sim)
    for i in range(10):
        pipe.a.send("b", i)
    sim.run()
    assert pipe.delivered_b == list(range(10))


def test_lost_frame_is_nacked_and_retransmitted():
    sim = Simulator()
    pipe = Pipe(sim, loss_seqs={("a", 3)})
    for i in range(1, 7):
        pipe.a.send("b", f"m{i}")
    sim.run(until=1.0)
    assert pipe.delivered_b == [f"m{i}" for i in range(1, 7)]
    assert pipe.b.nacks_sent >= 1
    assert pipe.a.retransmissions >= 1


def test_multiple_losses_recovered():
    sim = Simulator()
    pipe = Pipe(sim, loss_seqs={("a", 2), ("a", 4), ("a", 5)})
    for i in range(1, 9):
        pipe.a.send("b", i)
    sim.run(until=2.0)
    assert pipe.delivered_b == list(range(1, 9))


def test_acks_garbage_collect_sender_buffer():
    sim = Simulator()
    pipe = Pipe(sim)
    for i in range(ACK_EVERY + 2):
        pipe.a.send("b", i)
    sim.run(until=1.0)
    # the cumulative ack must have cleared (most of) the buffer
    assert pipe.a.outstanding_to("b") <= 2


def test_duplicate_frames_ignored():
    sim = Simulator()
    pipe = Pipe(sim)
    pipe.a.send("b", "x")
    sim.run()
    # replay frame 1 directly
    pipe.b.on_message("a", ChanData(1, "x"))
    sim.run()
    assert pipe.delivered_b == ["x"]


def test_bidirectional_channels_independent():
    sim = Simulator()
    pipe = Pipe(sim)
    pipe.a.send("b", "to-b")
    pipe.b.send("a", "to-a")
    sim.run()
    assert pipe.delivered_b == ["to-b"]
    assert pipe.delivered_a == ["to-a"]


def test_send_to_self_rejected():
    import pytest

    sim = Simulator()
    pipe = Pipe(sim)
    with pytest.raises(ValueError):
        pipe.a.send("a", "loop")


def test_gap_skipped_after_max_retries():
    """A permanently-lost frame from a dead peer eventually stops blocking."""
    sim = Simulator()
    delivered = []
    # transport that drops frame 1 forever and all NACKs (dead peer)
    mgr_holder = {}

    def transport(peer, message):
        if isinstance(message, ChanNack):
            return  # peer is dead: repair never happens
        sim.schedule(1e-3, mgr_holder["b"].on_message, "a", message)

    def b_transport(peer, message):
        return  # b's acks go nowhere

    b = ChannelManager(sim, "b", b_transport, lambda p, m: delivered.append(m))
    mgr_holder["b"] = b
    # frame 1 never arrives; frames 2..4 do
    b.on_message("a", ChanData(2, "two"))
    b.on_message("a", ChanData(3, "three"))
    b.on_message("a", ChanData(4, "four"))
    sim.run(until=5.0)
    assert delivered == ["two", "three", "four"]
    assert not b.has_pending_gaps()
