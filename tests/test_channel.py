"""Unit tests for the reliable FIFO channel layer (with a fake transport)."""

from typing import List, Tuple

from repro.groupcomm.channel import ACK_EVERY, ChannelManager
from repro.groupcomm.messages import ChanAck, ChanData, ChanNack
from repro.sim import Simulator


class Pipe:
    """Connects two ChannelManagers with controllable delivery."""

    def __init__(self, sim, loss_seqs=None):
        self.sim = sim
        self.loss_seqs = set(loss_seqs or [])  # ChanData seqs to drop once
        self.a = None
        self.b = None
        self.delivered_a: List = []
        self.delivered_b: List = []
        self.a = ChannelManager(sim, "a", self._send_from("a"), lambda p, m: self.delivered_a.append(m))
        self.b = ChannelManager(sim, "b", self._send_from("b"), lambda p, m: self.delivered_b.append(m))

    def _send_from(self, src):
        def transport(peer, message):
            if (
                isinstance(message, ChanData)
                and (src, message.seq) in self.loss_seqs
            ):
                self.loss_seqs.discard((src, message.seq))
                return
            target = self.b if peer == "b" else self.a
            self.sim.schedule(1e-3, target.on_message, src, message)

        return transport


def test_in_order_delivery():
    sim = Simulator()
    pipe = Pipe(sim)
    for i in range(10):
        pipe.a.send("b", i)
    sim.run()
    assert pipe.delivered_b == list(range(10))


def test_lost_frame_is_nacked_and_retransmitted():
    sim = Simulator()
    pipe = Pipe(sim, loss_seqs={("a", 3)})
    for i in range(1, 7):
        pipe.a.send("b", f"m{i}")
    sim.run(until=1.0)
    assert pipe.delivered_b == [f"m{i}" for i in range(1, 7)]
    assert pipe.b.nacks_sent >= 1
    assert pipe.a.retransmissions >= 1


def test_multiple_losses_recovered():
    sim = Simulator()
    pipe = Pipe(sim, loss_seqs={("a", 2), ("a", 4), ("a", 5)})
    for i in range(1, 9):
        pipe.a.send("b", i)
    sim.run(until=2.0)
    assert pipe.delivered_b == list(range(1, 9))


def test_acks_garbage_collect_sender_buffer():
    sim = Simulator()
    pipe = Pipe(sim)
    for i in range(ACK_EVERY + 2):
        pipe.a.send("b", i)
    sim.run(until=1.0)
    # the cumulative ack must have cleared (most of) the buffer
    assert pipe.a.outstanding_to("b") <= 2


def test_duplicate_frames_ignored():
    sim = Simulator()
    pipe = Pipe(sim)
    pipe.a.send("b", "x")
    sim.run()
    # replay frame 1 directly
    pipe.b.on_message("a", ChanData(1, "x"))
    sim.run()
    assert pipe.delivered_b == ["x"]


def test_bidirectional_channels_independent():
    sim = Simulator()
    pipe = Pipe(sim)
    pipe.a.send("b", "to-b")
    pipe.b.send("a", "to-a")
    sim.run()
    assert pipe.delivered_b == ["to-b"]
    assert pipe.delivered_a == ["to-a"]


def test_send_to_self_rejected():
    import pytest

    sim = Simulator()
    pipe = Pipe(sim)
    with pytest.raises(ValueError):
        pipe.a.send("a", "loop")


def test_gap_skipped_after_max_retries():
    """A permanently-lost frame from a dead peer eventually stops blocking."""
    sim = Simulator()
    delivered = []
    # transport that drops frame 1 forever and all NACKs (dead peer)
    mgr_holder = {}

    def transport(peer, message):
        if isinstance(message, ChanNack):
            return  # peer is dead: repair never happens
        sim.schedule(1e-3, mgr_holder["b"].on_message, "a", message)

    def b_transport(peer, message):
        return  # b's acks go nowhere

    b = ChannelManager(sim, "b", b_transport, lambda p, m: delivered.append(m))
    mgr_holder["b"] = b
    # frame 1 never arrives; frames 2..4 do
    b.on_message("a", ChanData(2, "two"))
    b.on_message("a", ChanData(3, "three"))
    b.on_message("a", ChanData(4, "four"))
    sim.run(until=5.0)
    assert delivered == ["two", "three", "four"]
    assert not b.has_pending_gaps()


def test_nack_backoff_resets_once_gap_fills():
    """Regression: after a gap is repaired, a later unrelated gap must start
    its NACK cycle from the base interval, not mid-backoff."""
    from repro.groupcomm.channel import NACK_RETRY

    sim = Simulator()
    pipe = Pipe(sim)
    b_in = pipe.b._in
    # first gap: frame 2 lost, repaired by NACK
    pipe.loss_seqs.add(("a", 2))
    for i in range(1, 5):
        pipe.a.send("b", i)
    sim.run(until=0.5)
    assert pipe.delivered_b == [1, 2, 3, 4]
    # bookkeeping fully reset after the repair
    inc = b_in["a"]
    assert inc.nack_tries == 0
    assert inc.nack_timer is None
    # second, unrelated gap much later: the first NACK retry must be
    # scheduled at the base NACK_RETRY interval (no inherited backoff)
    pipe.loss_seqs.add(("a", 6))
    for i in range(5, 9):
        pipe.a.send("b", i)
    sim.run(until=sim.now + 2 * 1e-3 + 1e-6)  # gap detected, retry timer armed
    assert inc.out_of_order
    assert inc.nack_timer is not None
    assert inc.nack_timer.time - sim.now <= NACK_RETRY + 1e-9
    sim.run(until=sim.now + 0.5)
    assert pipe.delivered_b == list(range(1, 9))


def test_nack_tries_reset_when_head_gap_fills_but_later_gap_remains():
    """The satellite bug: a head-gap repair while a later gap is still open
    left ``nack_tries`` mid-backoff.  Now the cycle restarts at base rate."""
    sim = Simulator()
    delivered = []
    b = ChannelManager(sim, "b", lambda p, m: None, lambda p, m: delivered.append(m))
    inc_factory = lambda: b._in["a"]
    # two gaps: frame 1 missing (head) and frame 3 missing (later)
    b.on_message("a", ChanData(2, "two"))
    b.on_message("a", ChanData(4, "four"))
    sim.run(until=0.1)  # several NACK retries elapse, backoff builds up
    assert inc_factory().nack_tries > 0
    tries_before = inc_factory().nack_tries
    # the head gap fills; the later gap (frame 3) remains
    b.on_message("a", ChanData(1, "one"))
    assert delivered == ["one", "two"]
    assert inc_factory().out_of_order  # frame 4 still buffered behind gap
    assert inc_factory().nack_tries == 0, (
        f"nack_tries must reset when a gap fills (was {tries_before})"
    )
    assert inc_factory().nack_timer is not None  # fresh cycle for frame 3
    b.on_message("a", ChanData(3, "three"))
    assert delivered == ["one", "two", "three", "four"]
    assert inc_factory().nack_tries == 0
    assert inc_factory().nack_timer is None


def test_piggybacked_acks_advance_sender_stability():
    """With reverse traffic flowing, standalone ChanAcks are suppressed but
    the sender's retransmit buffer still drains via piggybacked acks."""
    sim = Simulator()
    pipe = Pipe(sim)
    standalone_acks = []
    orig_transport = pipe.b.transport

    def counting_transport(peer, message):
        if isinstance(message, ChanAck):
            standalone_acks.append(message)
        orig_transport(peer, message)

    pipe.b.transport = counting_transport
    # ping-pong: every a->b frame is followed by a b->a frame within the
    # ack deadline, so b never needs a standalone ack
    def pong(peer, inner):
        pipe.delivered_b.append(inner)
        pipe.b.send("a", f"re:{inner}")

    pipe.b.upcall = pong
    for i in range(ACK_EVERY * 2):
        pipe.a.send("b", i)
        sim.run(until=sim.now + 5e-3)
    sim.run(until=sim.now + 1e-3)
    assert pipe.delivered_b == list(range(ACK_EVERY * 2))
    # stability advanced purely through piggybacked acks
    assert pipe.a.outstanding_to("b") <= 1
    assert standalone_acks == []
    piggy = sim.obs.metrics.counter_value("gc.channel.acks_piggybacked")
    assert piggy > 0


def test_silent_reverse_direction_falls_back_to_timed_acks():
    """No reverse traffic: the ACK_DELAY timer still emits standalone acks
    and the sender's buffer drains as before."""
    from repro.groupcomm.channel import ACK_DELAY

    sim = Simulator()
    pipe = Pipe(sim)
    acks = []
    orig_transport = pipe.b.transport

    def counting_transport(peer, message):
        if isinstance(message, ChanAck):
            acks.append(message)
        orig_transport(peer, message)

    pipe.b.transport = counting_transport
    pipe.a.send("b", "one-way")
    sim.run(until=ACK_DELAY * 3)
    assert pipe.delivered_b == ["one-way"]
    assert len(acks) == 1
    assert pipe.a.outstanding_to("b") == 0


def test_ack_piggyback_disabled_restores_standalone_acks():
    """With the knob off, frames carry no ack field and ChanAcks flow."""
    sim = Simulator()
    pipe = Pipe(sim)
    pipe.a.ack_piggyback = False
    pipe.b.ack_piggyback = False
    frames = []
    orig_transport = pipe.b.transport

    def recording_transport(peer, message):
        if isinstance(message, ChanData):
            frames.append(message)
        orig_transport(peer, message)

    pipe.b.transport = recording_transport

    def pong(peer, inner):
        pipe.delivered_b.append(inner)
        pipe.b.send("a", f"re:{inner}")

    pipe.b.upcall = pong
    for i in range(ACK_EVERY + 1):
        pipe.a.send("b", i)
        sim.run(until=sim.now + 5e-3)
    sim.run(until=sim.now + 0.1)
    assert all(frame.ack is None for frame in frames)
    assert pipe.a.outstanding_to("b") == 0  # standalone acks did the work
    assert sim.obs.metrics.counter_value("gc.channel.acks_piggybacked") == 0
