"""Tests for the application servants and peer-group applications."""

import pytest

from repro.apps import (
    ChatMember,
    KVStoreServant,
    PAYLOAD_CHARS,
    RandomNumberServant,
    WhiteboardMember,
    make_peer_config,
)
from repro.groupcomm import Liveliness, Ordering
from tests.conftest import Cluster


# ---------------------------------------------------------------------------
# servants in isolation
# ---------------------------------------------------------------------------
class TestRandomNumberServant:
    def test_deterministic_across_instances(self):
        a, b = RandomNumberServant(), RandomNumberServant()
        assert [a.draw() for _ in range(10)] == [b.draw() for _ in range(10)]

    def test_state_transfer_resynchronises(self):
        a = RandomNumberServant()
        for _ in range(7):
            a.draw()
        late = RandomNumberServant()
        late.set_state(a.get_state())
        assert late.draw() == a.draw()

    def test_draw_many(self):
        a = RandomNumberServant()
        values = a.draw_many(5)
        assert len(values) == 5 and a.draws == 5


class TestKVStoreServant:
    def test_put_get_delete(self):
        kv = KVStoreServant()
        assert kv.put("k", "v") == 1
        assert kv.get("k") == "v"
        assert kv.put("k", "v2") == 2
        assert kv.delete("k") is True
        assert kv.delete("k") is False
        with pytest.raises(KeyError):
            kv.get("k")
        assert kv.get_or("k", "fallback") == "fallback"

    def test_cas_semantics(self):
        kv = KVStoreServant()
        kv.put("x", 1)
        ok, version = kv.cas("x", 1, 2)
        assert ok and version == 2
        ok, version = kv.cas("x", 1, 3)  # stale expected version
        assert not ok and version == 2
        assert kv.get("x") == 2

    def test_keys_and_size(self):
        kv = KVStoreServant()
        kv.put("b", 1)
        kv.put("a", 2)
        assert kv.keys() == ["a", "b"]
        assert kv.size() == 2

    def test_state_transfer_and_checksum(self):
        kv = KVStoreServant()
        kv.put("a", 1)
        kv.put("b", [1, 2])
        clone = KVStoreServant()
        clone.set_state(kv.get_state())
        assert clone.checksum() == kv.checksum()
        assert clone.writes == kv.writes
        clone.put("c", 3)
        assert clone.checksum() != kv.checksum()


# ---------------------------------------------------------------------------
# peer applications over real group communication
# ---------------------------------------------------------------------------
def build_peer_group(cluster, config, count):
    sessions = [cluster.service(0).create_group("app", config)]
    for i in range(1, count):
        sessions.append(cluster.service(i).join_group("app", cluster.names[0]))
    cluster.run(1.0)
    return sessions


def test_make_peer_config_is_lively_symmetric():
    config = make_peer_config()
    assert config.liveliness == Liveliness.LIVELY
    assert config.ordering == Ordering.SYMMETRIC


def test_chat_transcripts_identical_everywhere():
    c = Cluster(4)
    sessions = build_peer_group(c, make_peer_config(), 4)
    members = [ChatMember(s, nickname=f"user{i}") for i, s in enumerate(sessions)]
    members[0].say("hello")
    members[2].say("hi there")
    c.run(0.2)
    members[1].say("how is the demo going?")
    members[3].say("smoothly")
    c.run(2.0)
    transcripts = [tuple(m.lines) for m in members]
    assert len(transcripts[0]) == 4
    assert all(t == transcripts[0] for t in transcripts)


def test_chat_padded_payload_length():
    c = Cluster(2)
    sessions = build_peer_group(c, make_peer_config(), 2)
    members = [ChatMember(s) for s in sessions]
    members[0].say_padded("short")
    c.run(1.0)
    assert len(members[1].lines[0]) == PAYLOAD_CHARS


def test_chat_callback_fires():
    c = Cluster(2)
    sessions = build_peer_group(c, make_peer_config(), 2)
    member = ChatMember(sessions[1])
    heard = []
    member.on_message = lambda sender, text: heard.append(text)
    ChatMember(sessions[0], nickname="alice").say("ping")
    c.run(1.0)
    assert heard and "ping" in heard[0]


def test_whiteboards_converge_under_concurrent_drawing():
    c = Cluster(3)
    sessions = build_peer_group(c, make_peer_config(), 3)
    boards = [WhiteboardMember(s) for s in sessions]
    boards[0].draw([(0, 0), (1, 1)], colour="red")
    boards[1].draw([(2, 2), (3, 3)], colour="blue")
    boards[2].draw([(4, 4), (5, 5)], colour="green")
    c.run(2.0)
    assert all(len(b) == 3 for b in boards)
    digests = {b.digest() for b in boards}
    assert len(digests) == 1


def test_whiteboard_erase_and_clear():
    c = Cluster(2)
    sessions = build_peer_group(c, make_peer_config(), 2)
    boards = [WhiteboardMember(s) for s in sessions]
    stroke = boards[0].draw([(0, 0), (1, 1)])
    c.run(1.0)
    boards[1].erase(stroke)
    c.run(1.0)
    assert all(len(b) == 0 for b in boards)
    boards[0].draw([(9, 9), (8, 8)])
    boards[1].clear()
    c.run(1.0)
    digests = {b.digest() for b in boards}
    assert len(digests) == 1
