"""Crash-recovery and rejoin: restart protocol, retry/backoff, caches.

The seed treated a crash as permanent: a recovered node stayed outside its
old group and a timed-out call stayed failed.  These tests pin down the
recovery subsystem end to end — member restart with state re-transfer
(including the reply caches, so duplicate suppression survives a restart),
the client's per-call retry policy, the jittered rebind backoff, and the
convergence verdict the scenario runner reports.
"""

import pytest

from repro.core import BindingStyle, Mode
from repro.core.messages import InvokeMsg
from repro.errors import CommFailure
from repro.groupcomm import GroupConfig, Liveliness, Ordering
from repro.recovery import (
    RecoveryManager,
    RetryPolicy,
    backoff_delay,
    convergence_status,
)
from repro.sim import run_process
from tests.core_helpers import AppCluster, Counter, bind_scheme

FAST = GroupConfig(
    ordering=Ordering.ASYMMETRIC,
    liveliness=Liveliness.LIVELY,
    silence_period=20e-3,
    suspicion_timeout=100e-3,
    flush_timeout=150e-3,
)


def fast_binding(cluster, client=0, **kwargs):
    return bind_scheme(cluster, client=client, fast=True, **kwargs)


def warm_up(cluster, binding, amount=1):
    def warm():
        yield binding.invoke("incr", (amount,), mode=Mode.ALL)

    run_process(cluster.sim, warm(), until=cluster.sim.now + 3.0)


# ---------------------------------------------------------------------------
# backoff / retry policy units
# ---------------------------------------------------------------------------
def test_backoff_delay_envelope_cap_and_jitter():
    import random

    rng = random.Random(7)
    for attempt in range(1, 10):
        envelope = min(2.0, 0.1 * 2.0 ** (attempt - 1))
        for _ in range(50):
            delay = backoff_delay(attempt, 0.1, 2.0, 2.0, 0.5, rng)
            assert envelope * 0.75 - 1e-12 <= delay <= envelope * 1.25 + 1e-12
    # jitter actually spreads (not a fixed point)
    samples = {backoff_delay(3, 0.1, 2.0, 2.0, 0.5, rng) for _ in range(20)}
    assert len(samples) > 1
    # zero jitter is deterministic
    assert backoff_delay(4, 0.1, 2.0, 2.0, 0.0, rng) == pytest.approx(0.8)
    with pytest.raises(ValueError):
        backoff_delay(0, 0.1, 2.0, 2.0, 0.5, rng)


def test_retry_policy_validation_and_roundtrip():
    assert not RetryPolicy().enabled  # default off = seed behaviour
    policy = RetryPolicy.from_dict({"max_attempts": 3, "base_delay": 0.05})
    assert policy.enabled and policy.max_attempts == 3
    assert RetryPolicy.from_dict(policy.to_dict()) == policy
    with pytest.raises((TypeError, ValueError)):
        RetryPolicy.from_dict({"max_attempts": 3, "bogus": 1})
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=-1)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=2, jitter=1.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=2, base_delay=1.0, max_delay=0.5)


def test_rebind_backoff_grows_with_attempts():
    """Satellite: the fixed rebind delay became a jittered exponential."""
    c = AppCluster(servers=2, clients=1)
    c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.OPEN)
    envelopes = []
    for attempt in range(5):
        envelope = min(1.5, 0.25 * 2.0 ** attempt)
        envelopes.append(envelope)
        for _ in range(20):
            delay = binding._rebind_delay(attempt)
            assert envelope * 0.75 - 1e-12 <= delay <= envelope * 1.25 + 1e-12
    assert envelopes == sorted(envelopes)  # the envelope itself is monotone


def test_closed_server_count_tracks_view():
    """Satellite: the pre-view path answers from the advertised membership,
    the post-view path from the (authoritative) installed view."""
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.CLOSED)
    assert binding._closed_server_count() == 3  # view minus this client
    gc = binding._gc
    binding._gc = None  # pre-view: fall back to the registry's answer
    try:
        assert binding._closed_server_count() == len(binding.servers)
    finally:
        binding._gc = gc


# ---------------------------------------------------------------------------
# restart / rejoin
# ---------------------------------------------------------------------------
def test_plain_recover_leaves_group_shrunk():
    """Seed behaviour, kept as the contrast: power-on alone does not rejoin."""
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.OPEN)
    warm_up(c, binding)
    c.net.crash("s1")
    c.run(2.0)
    c.net.recover("s1")
    c.run(4.0)
    status = convergence_status(c.services, "svc", c.net)
    assert not status["converged"]
    assert "s1" in status["live"] and "s1" not in (status["view"] or [])


def test_restart_rejoins_with_identical_state():
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.OPEN)
    warm_up(c, binding)
    c.net.crash("s1")
    c.run(2.0)
    warm_up(c, binding)  # state moves on while s1 is down
    c.net.recover("s1")
    servers[1].restart()
    c.run(6.0)
    status = convergence_status(c.services, "svc", c.net)
    assert status["converged"], status
    assert sorted(status["view"]) == ["s0", "s1", "s2"]
    assert servers[1].servant.value == 2  # state transfer caught it up
    assert len(set(status["digests"].values())) == 1
    assert c.sim.obs.metrics.counter_value("server.rejoins") == 1


def test_recovery_manager_records_recovery_time():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.OPEN)
    warm_up(c, binding)
    recovery = RecoveryManager(c.sim, c.net, c.services, "svc")
    c.net.crash("s1")
    c.run(2.0)
    recovery.restart_member("s1")
    c.run(6.0)
    assert convergence_status(c.services, "svc", c.net)["converged"]
    assert c.sim.obs.metrics.counter_value("recovery.converged") == 1
    assert c.sim.obs.metrics.counter_value("recovery.restarts") >= 1
    snapshot = c.sim.obs.metrics_snapshot()
    hist = snapshot["histograms"].get("recovery.time")
    assert hist and hist["count"] >= 1


def test_heal_with_rejoin_pulls_minority_back():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.OPEN)
    warm_up(c, binding)
    recovery = RecoveryManager(c.sim, c.net, c.services, "svc")
    c.net.partition({"s2"})
    c.run(2.0)
    c.net.heal()
    recovery.after_heal()
    c.run(8.0)
    status = convergence_status(c.services, "svc", c.net)
    assert status["converged"], status
    assert sorted(status["view"]) == ["s0", "s1", "s2"]


def test_duplicate_suppression_survives_restart():
    """The rejoin state snapshot carries the reply caches: replaying an old
    call after the restart must not re-execute anywhere."""
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.OPEN)
    warm_up(c, binding)
    c.net.crash("s1")
    c.run(2.0)
    c.net.recover("s1")
    servers[1].restart()
    c.run(6.0)
    assert convergence_status(c.services, "svc", c.net)["converged"]
    assert servers[1]._reply_cache, "snapshot must carry the reply cache"
    # replay call_no 1 (the warm-up call) through the client group, as a
    # lost-reply retry would
    gc = c.client(0).gcs.session(binding.group_name)
    gc.send(InvokeMsg("c0", 1, "incr", (1,), Mode.ALL, False, ""))
    c.run(2.0)
    assert [s.servant.value for s in servers] == [1, 1, 1]


# ---------------------------------------------------------------------------
# client-side retry policy
# ---------------------------------------------------------------------------
RETRY = RetryPolicy(max_attempts=6, base_delay=0.1, factor=2.0, max_delay=1.0)


def crash_manager_under_call(retry_policy):
    """Manager crashes right after the call leaves; the call's own timeout
    (0.15 s) is far shorter than rebind, so only retries can save it."""
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(
        c, style=BindingStyle.OPEN, restricted=True, retry_policy=retry_policy
    )
    warm_up(c, binding)
    fut = binding.invoke("incr", (1,), mode=Mode.MAJORITY, timeout=0.15)
    c.sim.schedule(1e-4, c.net.crash, "s0")
    c.run(8.0)
    return c, servers, fut


def test_retry_policy_bridges_manager_crash():
    c, servers, fut = crash_manager_under_call(RETRY)
    assert fut.done and not fut.failed
    assert c.sim.obs.metrics.counter_value("client.retries") >= 1
    assert c.sim.obs.metrics.counter_value("client.timeouts") == 0
    # retried under the same call number: no double execution at survivors
    assert servers[1].servant.value == 2
    assert servers[2].servant.value == 2


def test_without_retry_policy_the_same_call_fails():
    """Seed contrast for the retry satellite: same fault, no policy."""
    c, servers, fut = crash_manager_under_call(None)
    assert fut.failed
    with pytest.raises(CommFailure):
        fut.result()
    assert c.sim.obs.metrics.counter_value("client.timeouts") == 1
    assert c.sim.obs.metrics.counter_value("client.retries") == 0


# ---------------------------------------------------------------------------
# reply-cache eviction (documented miss behaviour)
# ---------------------------------------------------------------------------
def test_reply_cache_eviction_bounds_suppression(monkeypatch):
    """Within capacity a replay is answered from cache; once the entry is
    evicted the member re-executes.  That miss is the documented trade-off:
    the cache bounds memory, so exactly-once holds only within its window
    (safe here because active replicas execute deterministically)."""
    monkeypatch.setattr("repro.core.server.REPLY_CACHE_SIZE", 2)
    c = AppCluster(servers=2, clients=1)
    servers = c.serve_all("svc", Counter, config=FAST)
    binding = fast_binding(c, style=BindingStyle.OPEN)

    def traffic():
        for _ in range(4):
            yield binding.invoke("incr", (1,), mode=Mode.ALL)

    run_process(c.sim, traffic(), until=c.sim.now + 4.0)
    assert servers[0].servant.value == 4
    gc = c.client(0).gcs.session(binding.group_name)
    hits_before = c.sim.obs.metrics.counter_value("server.reply_cache_hits")
    # call 4 is still cached: suppressed
    gc.send(InvokeMsg("c0", 4, "incr", (1,), Mode.ALL, False, ""))
    c.run(1.0)
    assert servers[0].servant.value == 4
    assert c.sim.obs.metrics.counter_value("server.reply_cache_hits") > hits_before
    # call 1 was evicted (cache holds 2 entries): re-executed
    gc.send(InvokeMsg("c0", 1, "incr", (1,), Mode.ALL, False, ""))
    c.run(1.0)
    assert servers[0].servant.value == 5


# ---------------------------------------------------------------------------
# sharded: a crash during a scatter must re-resolve the moved shard
# ---------------------------------------------------------------------------
def test_crash_during_scatter_rebinds_to_relayouted_shard():
    """Shard 1's entire membership crashes while a scatter is in flight:
    the survivors' re-layout hands shard 1 to a node that never hosted it,
    and the client must re-resolve the shard's membership (fresh registry
    lookup) rather than retrying the dead incumbents forever."""
    from repro.apps import ShardedKVClient
    from tests.test_shard import keys_for_shard, serve_all_sharded, sharded_client

    c = AppCluster(servers=4, clients=1)
    servers = serve_all_sharded(c, num_shards=2)
    assert servers[0].assignment == [["s0", "s2"], ["s1", "s3"]]
    kv = ShardedKVClient(sharded_client(c, 2), timeout=25.0)
    shard0_keys = keys_for_shard(0, 2, 2)
    shard1_keys = keys_for_shard(1, 2, 2)
    items = {k: f"v:{k}" for k in shard0_keys + shard1_keys}

    def seed():
        yield kv.mput(items)

    run_process(c.sim, seed(), until=c.sim.now + 5.0)

    # kill shard 1's whole membership, then scatter *before* the client can
    # observe the failure: the shard-1 half goes to the dead incumbents
    c.net.crash("s1")
    c.net.crash("s3")
    future = kv.mget(list(items))
    c.run(20.0)

    # the survivors re-laid out both shards over {s0, s2}
    assert servers[0].assignment == [["s0"], ["s2"]]
    assert sorted(c.services["s2"].servers["kv"].hosted_shards) == [1]
    # the scatter completed: shard 0's half is intact; shard 1's half came
    # from the re-created incarnation (whole-shard crash loses its state)
    assert future.done and not future.failed, future
    got = future.result()
    assert {k: v for k, v in got.items() if k in shard0_keys} == {
        k: items[k] for k in shard0_keys
    }
    # new shard-1 traffic lands on the re-hosted shard
    def after():
        yield kv.put(shard1_keys[0], "new")
        value = yield kv.get(shard1_keys[0])
        assert value == "new"

    run_process(c.sim, after(), until=c.sim.now + 10.0)
    servant = c.services["s2"].servers["kv"].shard_server(1).servant
    assert servant._data.get(shard1_keys[0]) == "new"


def test_remap_rebuilds_a_broken_sub_binding():
    """When a sub-binding gives up with BindingBroken (every member it
    remembers is gone), the sharded layer discards it and builds a fresh
    one whose lookup re-resolves the shard — bounded, jittered remaps."""
    from repro.apps import ShardedKVClient
    from tests.test_shard import keys_for_shard, serve_all_sharded, sharded_client

    c = AppCluster(servers=4, clients=1)
    serve_all_sharded(c, num_shards=2)
    binding = sharded_client(c, 2)
    kv = ShardedKVClient(binding, timeout=10.0)
    key = keys_for_shard(1, 2, 1)[0]
    stale = binding.binding(1)
    stale.close()  # simulate "every member this sub-binding knew is gone"

    def traffic():
        yield kv.put(key, "v")
        value = yield kv.get(key)
        assert value == "v"

    run_process(c.sim, traffic(), until=c.sim.now + 10.0)
    assert binding.binding(1) is not stale
    assert c.sim.obs.metrics.counter_value("shard.client.remaps") >= 1
