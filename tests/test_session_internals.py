"""Session internals: state machine, stability, NULL scheduling, stats."""

import pytest

from repro.errors import NotMember
from repro.groupcomm import GroupConfig, Liveliness, LivelinessConfig, Ordering
from tests.conftest import Cluster, Collector
from tests.test_groupcomm_basic import build_group


def test_session_stats_track_traffic():
    c = Cluster(2)
    sessions = build_group(c, GroupConfig(ordering=Ordering.ASYMMETRIC))
    Collector(sessions[1])
    for i in range(5):
        sessions[0].send(i)
    c.run(1.0)
    assert sessions[0].stats.sent == 5
    assert sessions[0].stats.delivered == 5  # own messages loop back
    assert sessions[1].stats.delivered == 5
    assert sessions[1].stats.sent == 0
    assert sessions[0].stats.views >= 1


def test_unstable_buffer_drains_after_quiescence():
    c = Cluster(3)
    sessions = build_group(c, GroupConfig(ordering=Ordering.ASYMMETRIC))
    for i in range(10):
        sessions[0].send(i)
    c.run(2.0)
    assert all(not s.unstable for s in sessions)
    assert all(not s.has_outstanding() for s in sessions)


def test_acks_piggyback_on_data_without_extra_nulls():
    """Receivers that talk back promptly never owe ack-NULLs."""
    c = Cluster(2)
    config = GroupConfig(ordering=Ordering.ASYMMETRIC, ack_delay=50e-3)
    sessions = build_group(c, config)

    # ping-pong: each delivery triggers a reply from the other member
    def ponger(sender, payload):
        if isinstance(payload, int) and payload < 10:
            sessions[1].send(payload + 1)

    sessions[1].on_deliver = ponger
    sessions[0].send(0)
    c.run(0.04)  # finish before any 50ms ack timer can fire
    assert sessions[1].stats.delivered >= 5
    assert sessions[0].stats.nulls_sent == 0
    assert sessions[1].stats.nulls_sent == 0


def test_symmetric_null_count_bounded_per_message():
    c = Cluster(3)
    sessions = build_group(c, GroupConfig(ordering=Ordering.SYMMETRIC))
    sessions[0].send("x")
    c.run(1.0)
    # sender self-ack + one NULL per idle receiver, plus at most a couple of
    # stability stragglers — never a storm
    total_nulls = sum(s.stats.nulls_sent for s in sessions)
    assert 2 <= total_nulls <= 8


def test_closed_session_rejects_operations():
    c = Cluster(2)
    sessions = build_group(c, GroupConfig())
    sessions[0].leave()
    c.run(1.0)
    with pytest.raises(NotMember):
        sessions[0].send("late")
    # idempotent leave
    assert sessions[0].leave().done


def test_group_details_none_while_joining():
    c = Cluster(2)
    c.service(0).create_group("g", GroupConfig())
    joiner = c.service(1).join_group("g", "n0")
    assert joiner.group_details() is None  # not installed yet
    assert joiner.state == "joining"
    c.run(1.0)
    assert joiner.group_details() is not None


def test_lively_group_keeps_heartbeating_while_idle():
    # default (adaptive) liveliness: the idle heartbeat backs off to
    # silence_period * max_silence_factor but never goes fully silent
    c = Cluster(2)
    config = GroupConfig(
        liveliness=Liveliness.LIVELY, silence_period=20e-3, suspicion_timeout=200e-3
    )
    sessions = build_group(c, config)
    before = sessions[0].stats.nulls_sent
    c.run(1.0)
    after = sessions[0].stats.nulls_sent
    # cap is 8 * 20 ms = 160 ms -> at least ~6 NULLs/s, far below the
    # static rate of ~50/s
    assert 3 <= after - before <= 15


def test_lively_group_static_heartbeat_when_adaptive_off():
    c = Cluster(2)
    config = GroupConfig(
        liveliness=Liveliness.LIVELY,
        silence_period=20e-3,
        suspicion_timeout=200e-3,
        liveliness_config=LivelinessConfig(adaptive=False),
    )
    sessions = build_group(c, config)
    before = sessions[0].stats.nulls_sent
    c.run(1.0)
    after = sessions[0].stats.nulls_sent
    assert after - before >= 20  # ~one per silence period


def test_event_driven_group_is_silent_while_idle():
    c = Cluster(2)
    sessions = build_group(c, GroupConfig(liveliness=Liveliness.EVENT_DRIVEN))
    sent_before = c.net.stats.messages_sent
    c.run(2.0)
    assert c.net.stats.messages_sent == sent_before  # total quiescence
