"""Randomized invariant sweep: seed x ordering x batching x fault matrix.

Every cell replays a peer-group scenario under the protocol recorder and
asserts the four NewTop invariants (total order, gap-free FIFO, causal
precedence, virtual synchrony).  This is the acceptance gate for the
sequencer ticket-batching change: batching must alter traffic, never
semantics.

The tier-1 matrix keeps 2 seeds for speed; CI's ``invariant-sweep`` job
widens it via ``REPRO_INVARIANT_SEEDS`` (comma-separated list) to 20+.
A mutation smoke-check deliberately reorders batched tickets and asserts
the checker reports violations — proving the harness has teeth.
"""

import os

import pytest

from repro.groupcomm import GroupConfig, Liveliness, Ordering, OrderingConfig
from repro.groupcomm.ordering import AsymmetricOrder
from repro.scenario import run_scenario
from tests.conftest import Cluster
from tests.invariants import (
    check_combined_exactly_once,
    check_exactly_once,
    check_invariants,
    check_reducer_determinism,
    check_sharded_invariants,
    record_combined,
    record_executions,
    record_protocol,
    record_reductions,
)
from tests.test_groupcomm_basic import build_group

SEEDS = [int(s) for s in os.environ.get("REPRO_INVARIANT_SEEDS", "7,23").split(",")]
ORDERINGS = ["symmetric", "asymmetric"]
BATCHING = [False, True]
FAULTS = ["none", "crash-sequencer"]

#: scenario peer members are named p0.., and p0 (the group creator) is the
#: sequencer-equivalent the symbolic "manager" fault target resolves to
SEQUENCER = "p0"


def sweep_spec(seed: int, ordering: str, batch: bool, fault: str) -> dict:
    ordering_config = (
        {"ticket_batch_max": 6, "ticket_batch_delay": 2e-3} if batch else {}
    )
    faults = (
        [{"at": 0.8, "kind": "crash", "target": "manager"}]
        if fault == "crash-sequencer"
        else []
    )
    return {
        "name": f"invariant-{ordering}-s{seed}-b{int(batch)}-{fault}",
        "seed": seed,
        "topology": "lan",
        "settle": 1.0,
        "group": {
            "replicas": 4,
            "ordering": ordering,
            "liveliness": "lively",
            "silence_period": 30e-3,
            "suspicion_timeout": 150e-3,
            "flush_timeout": 150e-3,
            "ordering_config": ordering_config,
        },
        "traffic": {
            "workload": "peer",
            "arrivals": {"kind": "poisson", "rate": 4.0},
            "churn": {"initial": 3},
            "duration": 2.0,
            "drain": 4.0,
            "timeout": 3.0,
            "payload_chars": 40,
        },
        "faults": faults,
        "slos": [],
    }


@pytest.mark.parametrize("fault", FAULTS)
@pytest.mark.parametrize("batch", BATCHING)
@pytest.mark.parametrize("ordering", ORDERINGS)
@pytest.mark.parametrize("seed", SEEDS)
def test_invariant_sweep(seed, ordering, batch, fault):
    with record_protocol() as record:
        report = run_scenario(sweep_spec(seed, ordering, batch, fault))
    # the scenario must have actually multicast something
    assert report["metrics"]["counters"].get("gc.delivered", 0) > 0
    exclude = {SEQUENCER} if fault == "crash-sequencer" else set()
    violations = check_invariants(record, total_order=True, exclude=exclude)
    assert violations == []


def test_sweep_delivers_same_messages_batched_or_not():
    """Batching changes ticket traffic, not the delivered history: the
    surviving members' delivery orders are identical batch on/off."""
    histories = []
    for batch in (False, True):
        with record_protocol() as record:
            run_scenario(sweep_spec(11, "asymmetric", batch, "none"))
        histories.append(
            {m: record.deliveries("conf", m) for m in record.members_of("conf")}
        )
    assert histories[0] == histories[1]


# ---------------------------------------------------------------------------
# mutation smoke-check: the harness must catch a deliberately broken protocol
# ---------------------------------------------------------------------------
def test_checker_catches_reordered_ticket_batch(monkeypatch):
    """Deliberately deliver batched tickets in reverse order; the total-order
    (or FIFO) invariant must flag it — proving the checker has teeth."""
    original = AsymmetricOrder.on_ticket_batch

    def sabotaged(self, batch):
        batch.tickets = list(reversed(batch.tickets))
        original(self, batch)

    monkeypatch.setattr(AsymmetricOrder, "on_ticket_batch", sabotaged)
    with record_protocol() as record:
        run_scenario(sweep_spec(7, "asymmetric", True, "none"))
    violations = check_invariants(record, total_order=True)
    assert violations, "reversed ticket batches must violate an invariant"


def test_checker_catches_conflicting_orders_directly():
    """Unit-level teeth check: hand-built logs with a transposition."""
    from tests.invariants import ProtocolRecord

    record = ProtocolRecord()
    a = (1, "n0", 1)
    b = (1, "n1", 1)
    for member, order in (("n0", [a, b]), ("n1", [b, a])):
        log = record.log("g", member)
        log.append(("view", 1, ("n0", "n1")))
        for view_id, sender, gseq in order:
            log.append(("deliver", view_id, sender, gseq))
    violations = check_invariants(record)
    assert any(v.startswith("total-order") for v in violations)


# ---------------------------------------------------------------------------
# crash-recovery sweep: restart / rejoin cells over the replicated service
# ---------------------------------------------------------------------------
#: replicas are named s0.. and s0 is the initial sequencer/manager hint;
#: restart targets are concrete node names (the symbolic "manager" would
#: resolve to the *new* manager by the time the restart fires)
RECOVERY_FAULTS = {
    "crash-restart": [
        {"at": 0.6, "kind": "crash", "target": "s1"},
        {"at": 1.4, "kind": "restart", "target": "s1"},
    ],
    "partition-heal-rejoin": [
        {"at": 0.6, "kind": "partition", "groups": [["s2"]]},
        {"at": 1.6, "kind": "heal", "rejoin": True},
    ],
    "manager-crash-restart": [
        {"at": 0.6, "kind": "crash", "target": "s0"},
        {"at": 1.4, "kind": "restart", "target": "s0"},
    ],
}


def recovery_spec(seed: int, fault: str) -> dict:
    return {
        "name": f"recovery-{fault}-s{seed}",
        "seed": seed,
        "topology": "lan",
        "settle": 1.0,
        "group": {
            "replicas": 3,
            "style": "open",
            "ordering": "asymmetric",
            "liveliness": "lively",
            "silence_period": 30e-3,
            "suspicion_timeout": 150e-3,
            "flush_timeout": 150e-3,
            "retry": {"max_attempts": 4, "base_delay": 0.1, "max_delay": 1.0},
        },
        "traffic": {
            "workload": "request_reply",
            "arrivals": {"kind": "poisson", "rate": 6.0},
            "churn": {"initial": 2},
            "duration": 2.0,
            "drain": 6.0,
            "timeout": 1.0,
            "bindings": 2,
        },
        "faults": RECOVERY_FAULTS[fault],
        "slos": [],
    }


@pytest.mark.parametrize("fault", sorted(RECOVERY_FAULTS))
@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_sweep(seed, fault):
    """Crash/partition then restart/rejoin: the run must end converged
    (full view, identical digests), with exactly-once execution per
    member incarnation and every protocol invariant intact."""
    with record_protocol() as record, record_executions() as executions:
        report = run_scenario(recovery_spec(seed, fault))
    recovery = report["recovery"]
    assert recovery is not None and recovery["converged"], recovery
    counters = report["metrics"]["counters"]
    assert counters.get("scenario.convergence.failures", 0) == 0
    assert executions, "the sweep must actually execute calls"
    assert check_exactly_once(executions) == []
    violations = check_invariants(record, total_order=True)
    assert violations == []


def test_convergence_check_catches_lost_state_transfer(monkeypatch):
    """Mutation smoke-check: a member that silently drops incoming state
    snapshots rejoins with stale state — the convergence verdict must
    flag the digest divergence, proving the checker has teeth."""
    from repro.core.server import ObjectGroupServer

    monkeypatch.setattr(
        ObjectGroupServer, "_receive_state", lambda self, snapshot: None
    )
    report = run_scenario(recovery_spec(7, "crash-restart"))
    assert report["recovery"]["converged"] is False
    assert report["metrics"]["counters"].get("scenario.convergence.failures", 0) >= 1


# ---------------------------------------------------------------------------
# sharded sweep: seed x shard-count x crash cells over the sharded kvstore
# ---------------------------------------------------------------------------
SHARD_COUNTS = [1, 2]
SHARD_FAULTS = ["none", "crash-restart"]


def sharded_spec(seed: int, shards: int, fault: str) -> dict:
    faults = (
        [
            {"at": 0.8, "kind": "crash", "target": "s1"},
            {"at": 1.6, "kind": "restart", "target": "s1"},
        ]
        if fault == "crash-restart"
        else []
    )
    return {
        "name": f"sharded-{shards}shard-s{seed}-{fault}",
        "seed": seed,
        "topology": "lan",
        "settle": 1.0,
        "group": {
            "replicas": 4,
            "style": "open",
            "ordering": "asymmetric",
            "liveliness": "lively",
            "silence_period": 30e-3,
            "suspicion_timeout": 150e-3,
            "flush_timeout": 150e-3,
            "retry": {"max_attempts": 4, "base_delay": 0.1, "max_delay": 1.0},
            "shards": shards,
        },
        "traffic": {
            "workload": "sharded_kvstore",
            "arrivals": {"kind": "poisson", "rate": 5.0},
            "churn": {"initial": 2},
            "duration": 2.0,
            "drain": 8.0,
            "operation": "mixed",
            "mode": "all",
            "timeout": 2.0,
            "bindings": 2,
            "keys": {
                "space": 32,
                "distribution": "zipf",
                "alpha": 1.1,
                "multi_fraction": 0.25,
                "multi_size": 4,
            },
        },
        "faults": faults,
        "slos": [],
    }


@pytest.mark.parametrize("fault", SHARD_FAULTS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_sweep(seed, shards, fault):
    """Every shard keeps its own total order and gap-free FIFO, execution
    is exactly-once per member incarnation across single-key calls and
    scatter/gather, and the run ends with parent + every shard converged."""
    with record_protocol() as record, record_executions() as executions:
        report = run_scenario(sharded_spec(seed, shards, fault))
    recovery = report["recovery"]
    assert recovery is not None and recovery["converged"], recovery
    assert recovery["provisioned"]
    assert executions, "the sweep must actually execute calls"
    assert check_exactly_once(executions) == []
    assert check_sharded_invariants(record, "svc", shards) == []


def test_genuineness_check_catches_broadcast_routing(monkeypatch):
    """Mutation smoke-check: a router bug that multicasts single-key calls
    to *every* shard must trip the genuineness invariant — proving the
    unaddressed-shards-do-zero-work check has teeth."""
    from repro.apps import ShardedKVClient
    from repro.shard.binding import ShardedBinding
    from repro.sim import run_process
    from tests.core_helpers import AppCluster
    from tests.invariants import check_genuineness, protocol_mark
    from tests.test_shard import keys_for_shard, serve_all_sharded, sharded_client

    original = ShardedBinding._invoke_on

    def broadcast(self, shard_no, operation, args, mode, timeout):
        results = [
            original(self, n, operation, args, mode, timeout)
            for n in range(self.num_shards)
        ]
        return results[shard_no]

    monkeypatch.setattr(ShardedBinding, "_invoke_on", broadcast)
    c = AppCluster(servers=4, clients=1)
    serve_all_sharded(c, num_shards=2)
    kv = ShardedKVClient(sharded_client(c, 2), timeout=5.0)
    with record_protocol() as record:
        mark = protocol_mark(record)
        key = keys_for_shard(0, 2, 1)[0]

        def traffic():
            yield kv.put(key, "v")

        run_process(c.sim, traffic(), until=c.sim.now + 5.0)
    violations = check_genuineness(record, "kv", addressed={0}, mark=mark)
    assert violations, "broadcast routing must violate genuineness"


# ---------------------------------------------------------------------------
# combined-invocation sweep: scheme shape x fault cells over map_reduce
# ---------------------------------------------------------------------------
GMI_SHAPES = ["combined_flat", "combined_tree"]
GMI_FAULTS = {
    "none": [],
    "crash-restart": [
        {"at": 0.8, "kind": "crash", "target": "s1"},
        {"at": 1.6, "kind": "restart", "target": "s1"},
    ],
}


def gmi_spec(seed: int, shape: str, fault: str) -> dict:
    return {
        "name": f"gmi-{shape}-s{seed}-{fault}",
        "seed": seed,
        "topology": "lan",
        "settle": 1.0,
        "group": {
            "replicas": 3,
            "style": "open",
            "ordering": "asymmetric",
            "liveliness": "lively",
            "silence_period": 30e-3,
            "suspicion_timeout": 150e-3,
            "flush_timeout": 150e-3,
            "retry": {"max_attempts": 4, "base_delay": 0.1, "max_delay": 1.0},
        },
        "traffic": {
            "workload": "map_reduce",
            "arrivals": {"kind": "poisson", "rate": 4.0},
            "churn": {"initial": 2},
            "duration": 2.0,
            "drain": 8.0,
            "operation": "aggregate",
            "timeout": 3.0,
            "scheme": shape,
            "reply": "combine",
            "reducer": "sum",
            "callers": 4,
        },
        "faults": GMI_FAULTS[fault],
        "slos": [],
    }


@pytest.mark.parametrize("fault", sorted(GMI_FAULTS))
@pytest.mark.parametrize("shape", GMI_SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_gmi_sweep(seed, shape, fault):
    """A 4-caller combined cohort under open-loop traffic: every logical
    call collapses to exactly one root-issued group invocation executed
    once per live member, every reducer fold is arrival-order and
    tree-shape independent, the protocol invariants hold, and a crashed
    and restarted replica rejoins converged."""
    with record_protocol() as record, record_executions() as executions, \
            record_combined() as issues, record_reductions() as folds:
        report = run_scenario(gmi_spec(seed, shape, fault))
    recovery = report["recovery"]
    assert recovery is not None and recovery["converged"], recovery
    assert issues, "the sweep must issue combined calls"
    assert report["metrics"]["counters"].get("gmi.combined.calls", 0) == len(issues)
    exclude = {"s1"} if fault == "crash-restart" else set()
    assert check_combined_exactly_once(
        issues, executions, ["s0", "s1", "s2"], exclude=exclude
    ) == []
    assert folds, "reply combining must actually fold reducer inputs"
    assert check_reducer_determinism(folds) == []
    violations = check_invariants(record, total_order=True, exclude=exclude)
    assert violations == []


def test_combined_checker_catches_double_issue(monkeypatch):
    """Mutation smoke-check: a root that issues the merged group call twice
    per logical combined call must trip ``check_combined_exactly_once`` —
    the cohort's calls would escape as 2N invocations."""
    from repro.core.combined import CombinedBinding
    from repro.core import SchemeConfig
    from tests.core_helpers import AppCluster, Counter, bind_combined_cohort

    original = CombinedBinding._issue

    def doubled(self, call_no, operation, merged_parts, count, mode, timeout):
        original(self, call_no, operation, merged_parts, count, mode, timeout)
        original(self, call_no, operation, merged_parts, count, mode, timeout)

    monkeypatch.setattr(CombinedBinding, "_issue", doubled)
    c = AppCluster(servers=2, clients=2, seed=3)
    with record_combined() as issues, record_executions() as executions:
        c.serve_all("svc", Counter)
        scheme = SchemeConfig(
            invocation="combined_flat", reply="combine", reducer="sum",
            callers=list(c.client_names),
        )
        bindings = bind_combined_cohort(c, scheme)
        for binding in bindings:
            binding.invoke("incr", (1,), timeout=5.0)
        c.run(2.0)
    violations = check_combined_exactly_once(issues, executions, c.server_names)
    assert violations, "a double-issued combined call must be flagged"


def test_reducer_checker_catches_unlawful_fold():
    """Mutation smoke-check: a non-commutative fold smuggled past bind-time
    validation (by constructing the Reducer directly) must trip
    ``check_reducer_determinism`` — its result depends on arrival order."""
    from repro.core.scheme import Reducer

    rogue = Reducer("sub", lambda a, b: a - b)  # bypasses validate_reducer
    with record_reductions() as folds:
        rogue.reduce([5, 3, 2])
    violations = check_reducer_determinism(folds)
    assert violations, "a subtraction fold must be flagged as order-dependent"


# ---------------------------------------------------------------------------
# satellite: sequencer fail-over mid-batch
# ---------------------------------------------------------------------------
def test_sequencer_failover_mid_batch():
    """The sequencer crashes holding assigned-but-unsent batched tickets;
    the survivors re-ticket through the new sequencer and deliver without
    conflicting order."""
    c = Cluster(4, seed=9)
    config = GroupConfig(
        ordering=Ordering.ASYMMETRIC,
        liveliness=Liveliness.LIVELY,
        silence_period=20e-3,
        suspicion_timeout=100e-3,
        ordering_config=OrderingConfig(ticket_batch_max=64, ticket_batch_delay=0.5),
    )
    with record_protocol() as record:
        sessions = build_group(c, config)
        # non-sequencer members multicast; the sequencer n0 accumulates
        # ticket assignments in a wide-open batch window
        for i in range(3):
            sessions[1].send(f"x{i}")
            sessions[2].send(f"y{i}")
        # crash the sequencer before the batch window (0.5 s) can close,
        # verifying it really holds assigned-but-unsent tickets at that point
        pending_at_crash = []

        def crash_sequencer():
            pending_at_crash.append(c.services["n0"].ticket_batcher.pending_count())
            c.net.crash("n0")

        c.sim.schedule(0.05, crash_sequencer)
        c.run(4.0)
        assert pending_at_crash[0] > 0
        survivors = sessions[1:]
        assert all(set(s.view.members) == {"n1", "n2", "n3"} for s in survivors)
        # every multicast reaches every survivor, in one agreed order
        delivered = [record.deliveries("g", m) for m in ("n1", "n2", "n3")]
        assert delivered[0] == delivered[1] == delivered[2]
        assert len(delivered[0]) == 6
    violations = check_invariants(record, total_order=True, exclude={"n0"})
    assert violations == []
