"""Tests for sender-side flow control."""

import pytest

from repro.groupcomm import GroupConfig, Ordering
from repro.groupcomm.flowcontrol import FlowController
from tests.conftest import Cluster, Collector
from tests.test_groupcomm_basic import build_group


class TestFlowControllerUnit:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            FlowController(0)
        with pytest.raises(ValueError):
            GroupConfig(send_window=0)

    def test_acquire_until_window_full(self):
        flow = FlowController(2)
        assert flow.try_acquire("a")
        assert flow.try_acquire("b")
        assert not flow.try_acquire("c")
        assert flow.in_flight == 2
        assert flow.queued == 1
        assert flow.sends_delayed == 1

    def test_release_frees_slots_for_drain(self):
        flow = FlowController(1)
        assert flow.try_acquire("a")
        assert not flow.try_acquire("b")
        assert flow.drain() is None  # window still full
        flow.release()
        assert flow.drain() == "b"
        assert flow.in_flight == 1
        assert flow.drain() is None

    def test_release_never_goes_negative(self):
        flow = FlowController(2)
        flow.release(5)
        assert flow.in_flight == 0

    def test_reset_and_pop_queued(self):
        flow = FlowController(1)
        flow.try_acquire("a")
        flow.try_acquire("b")
        flow.try_acquire("c")
        assert flow.pop_all_queued() == ["b", "c"]
        flow.reset()
        assert flow.in_flight == 0 and flow.queued == 0


class TestFlowControlIntegration:
    def test_burst_beyond_window_still_delivers_everything_in_order(self):
        c = Cluster(3)
        config = GroupConfig(ordering=Ordering.ASYMMETRIC, send_window=4)
        sessions = build_group(c, config)
        col = Collector(sessions[1])
        for i in range(40):  # 10x the window, in one burst
            sessions[0].send(i)
        assert sessions[0].flow.sends_delayed > 0
        c.run(3.0)
        assert col.payloads == list(range(40))
        assert sessions[0].flow.in_flight <= 4

    def test_window_bounds_unstable_buffer(self):
        c = Cluster(3)
        config = GroupConfig(ordering=Ordering.ASYMMETRIC, send_window=4)
        sessions = build_group(c, config)
        for i in range(30):
            sessions[0].send(i)
        # before any acks return, at most `window` own messages are unstable
        own = [m for m in sessions[0].unstable.values() if m.sender == "n0"]
        assert len(own) <= 4

    def test_view_change_mid_burst_loses_nothing(self):
        from repro.groupcomm import Liveliness

        c = Cluster(3)
        config = GroupConfig(
            ordering=Ordering.ASYMMETRIC,
            send_window=4,
            liveliness=Liveliness.LIVELY,
            silence_period=20e-3,
            suspicion_timeout=100e-3,
        )
        sessions = build_group(c, config)
        col = Collector(sessions[1])
        for i in range(20):
            sessions[0].send(i)
        c.run(2e-3)
        c.net.crash("n2")  # forces a flush while sends are still queued
        c.run(3.0)
        assert col.payloads == list(range(20))
