"""Tests for sender-side flow control."""

import pytest

from repro.groupcomm import GroupConfig, Ordering
from repro.groupcomm.flowcontrol import FlowController, FlowQueueFull
from tests.conftest import Cluster, Collector
from tests.test_groupcomm_basic import build_group


class TestFlowControllerUnit:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            FlowController(0)
        with pytest.raises(ValueError):
            GroupConfig(send_window=0)

    def test_acquire_until_window_full(self):
        flow = FlowController(2)
        assert flow.try_acquire("a")
        assert flow.try_acquire("b")
        assert not flow.try_acquire("c")
        assert flow.in_flight == 2
        assert flow.queued == 1
        assert flow.sends_delayed == 1

    def test_release_frees_slots_for_drain(self):
        flow = FlowController(1)
        assert flow.try_acquire("a")
        assert not flow.try_acquire("b")
        assert flow.drain() is None  # window still full
        flow.release()
        assert flow.drain() == "b"
        assert flow.in_flight == 1
        assert flow.drain() is None

    def test_release_never_goes_negative(self):
        flow = FlowController(2)
        flow.release(5)
        assert flow.in_flight == 0

    def test_bounded_queue_overflow_refuses_without_queueing(self):
        flow = FlowController(1, max_queue=2)
        assert flow.try_acquire("a")
        assert not flow.try_acquire("b")
        assert not flow.try_acquire("c")
        with pytest.raises(FlowQueueFull):
            flow.try_acquire("d")
        assert flow.queued == 2  # the refused payload was not queued
        assert flow.sends_refused == 1
        with pytest.raises(ValueError):
            FlowController(1, max_queue=-1)

    def test_requeue_bypasses_the_bound_for_view_change_replay(self):
        flow = FlowController(1, max_queue=1)
        flow.try_acquire("a")
        flow.try_acquire("b")
        # work admitted before a view change must survive the replay even
        # when the bounded queue is momentarily full
        assert not flow.requeue("c")
        assert flow.queued == 2

    def test_occupancy_tracks_the_fuller_of_window_and_queue(self):
        flow = FlowController(4)  # unbounded queue: window only
        flow.try_acquire("a")
        flow.try_acquire("b")
        assert flow.occupancy() == 0.5
        for i in range(10):
            flow.try_acquire(i)
        assert flow.occupancy() == 1.0  # clamped despite the long queue

        bounded = FlowController(4, max_queue=10)
        for i in range(9):
            bounded.try_acquire(i)
        assert bounded.occupancy() == 1.0  # window saturated
        bounded.release(4)
        for _ in range(4):
            bounded.drain()
        # 4 in flight, 1 queued: queue pressure 0.1 < window pressure 1.0
        assert bounded.occupancy() == 1.0
        bounded.release(2)
        assert bounded.occupancy() == 0.5

    def test_reset_and_pop_queued(self):
        flow = FlowController(1)
        flow.try_acquire("a")
        flow.try_acquire("b")
        flow.try_acquire("c")
        assert flow.pop_all_queued() == ["b", "c"]
        flow.reset()
        assert flow.in_flight == 0 and flow.queued == 0


class TestFlowControlIntegration:
    def test_burst_beyond_window_still_delivers_everything_in_order(self):
        c = Cluster(3)
        config = GroupConfig(ordering=Ordering.ASYMMETRIC, send_window=4)
        sessions = build_group(c, config)
        col = Collector(sessions[1])
        for i in range(40):  # 10x the window, in one burst
            sessions[0].send(i)
        assert sessions[0].flow.sends_delayed > 0
        c.run(3.0)
        assert col.payloads == list(range(40))
        assert sessions[0].flow.in_flight <= 4

    def test_window_bounds_unstable_buffer(self):
        c = Cluster(3)
        config = GroupConfig(ordering=Ordering.ASYMMETRIC, send_window=4)
        sessions = build_group(c, config)
        for i in range(30):
            sessions[0].send(i)
        # before any acks return, at most `window` own messages are unstable
        own = [m for m in sessions[0].unstable.values() if m.sender == "n0"]
        assert len(own) <= 4

    def test_bounded_queue_overflows_out_of_send_and_publishes_gauges(self):
        c = Cluster(3)
        config = GroupConfig(
            ordering=Ordering.ASYMMETRIC, send_window=2, flow_max_queue=3
        )
        sessions = build_group(c, config)
        col = Collector(sessions[1])
        for i in range(5):  # fills the window (2) and the queue (3)
            sessions[0].send(i)
        with pytest.raises(FlowQueueFull):
            sessions[0].send(99)
        metrics = c.sim.obs.metrics
        assert metrics.gauge("gc.flow.in_flight").value == 2
        assert metrics.gauge("gc.flow.queued").value == 3
        assert sessions[0].local_pushback() == 1.0
        c.run(3.0)
        # everything accepted before the overflow still delivers in order
        assert col.payloads == list(range(5))
        assert metrics.gauge("gc.flow.queued").value == 0

    def test_view_change_mid_burst_loses_nothing(self):
        from repro.groupcomm import Liveliness

        c = Cluster(3)
        config = GroupConfig(
            ordering=Ordering.ASYMMETRIC,
            send_window=4,
            liveliness=Liveliness.LIVELY,
            silence_period=20e-3,
            suspicion_timeout=100e-3,
        )
        sessions = build_group(c, config)
        col = Collector(sessions[1])
        for i in range(20):
            sessions[0].send(i)
        c.run(2e-3)
        c.net.crash("n2")  # forces a flush while sends are still queued
        c.run(3.0)
        assert col.payloads == list(range(20))
