"""The scenario engine: arrivals, churn, fault schedules, SLOs, runner, CLI."""

import json
import random

import pytest

from repro.bench.workloads import OpenLoopClient, run_until_done
from repro.core import BindingStyle, Mode
from repro.groupcomm import GroupConfig, Liveliness, Ordering
from repro.scenario import (
    DiurnalArrivals,
    FaultEvent,
    FaultSchedule,
    OpenLoopGenerator,
    PoissonArrivals,
    Population,
    RampArrivals,
    ScenarioSpec,
    arrival_process_from_spec,
    load_spec,
    next_arrival,
    run_scenario,
)
from repro.scenario.__main__ import main as scenario_main
from repro.sim import Future, Simulator
from tests.core_helpers import AppCluster, Counter

FAST = GroupConfig(
    ordering=Ordering.ASYMMETRIC,
    liveliness=Liveliness.LIVELY,
    silence_period=20e-3,
    suspicion_timeout=100e-3,
)


# ---------------------------------------------------------------------------
# arrival processes
# ---------------------------------------------------------------------------
def _count_arrivals(process, horizon, seed=3, **kwargs):
    rng = random.Random(seed)
    count, t = 0, 0.0
    while True:
        t = next_arrival(process, t, rng, horizon=horizon, **kwargs)
        if t is None:
            return count
        count += 1


def test_poisson_rate_sanity():
    # ~rate*horizon arrivals, within a loose stochastic band
    count = _count_arrivals(PoissonArrivals(10.0), horizon=100.0)
    assert 800 < count < 1200


def test_ramp_rate_shape():
    ramp = RampArrivals(start_rate=1.0, end_rate=5.0, ramp=10.0)
    assert ramp.rate(0.0) == 1.0
    assert ramp.rate(5.0) == pytest.approx(3.0)
    assert ramp.rate(10.0) == ramp.rate(50.0) == 5.0
    assert ramp.peak_rate == 5.0


def test_diurnal_cycles_between_base_and_peak():
    diurnal = DiurnalArrivals(base_rate=1.0, peak_rate=9.0, period=8.0)
    assert diurnal.rate(0.0) == pytest.approx(1.0)  # phase 0 = trough
    assert diurnal.rate(4.0) == pytest.approx(9.0)  # half period = crest
    assert diurnal.rate(8.0) == pytest.approx(1.0)


def test_mmpp_is_deterministic_per_rng_stream():
    def burst_trace(seed):
        process = arrival_process_from_spec(
            {"kind": "bursty", "rate_low": 1.0, "rate_high": 20.0,
             "dwell_low": 2.0, "dwell_high": 1.0}
        ).bind_rng(random.Random(seed))
        return [process.rate(t * 0.25) for t in range(200)]

    assert burst_trace(5) == burst_trace(5)
    assert burst_trace(5) != burst_trace(6)  # bursts move with the seed


def test_thinning_respects_population_modulation():
    # doubling the population multiplier should ~double the arrivals
    process = PoissonArrivals(2.0)
    one = _count_arrivals(process, 200.0, peak_scale=1.0, rate_of_time=lambda t: 1.0)
    two = _count_arrivals(process, 200.0, peak_scale=2.0, rate_of_time=lambda t: 2.0)
    assert 1.6 < two / one < 2.4


def test_arrival_spec_validation():
    with pytest.raises(ValueError, match="unknown arrival kind"):
        arrival_process_from_spec({"kind": "sawtooth"})
    with pytest.raises(ValueError, match="missing"):
        arrival_process_from_spec({"kind": "poisson"})
    with pytest.raises(ValueError, match="unknown keys"):
        arrival_process_from_spec({"kind": "poisson", "rate": 1.0, "burst": 2})


# ---------------------------------------------------------------------------
# population churn
# ---------------------------------------------------------------------------
def test_population_scripted_steps():
    pop = Population(initial=10, steps=[{"at": 5.0, "join": 10}, {"at": 8.0, "leave": 15}])
    assert pop.peak == 20
    assert pop.size(0.0) == 10
    assert pop.size(5.0) == 20
    assert pop.size(9.0) == 5
    assert pop.describe()["joins"] == 10 and pop.describe()["leaves"] == 15


def test_population_stochastic_churn_is_clamped_and_deterministic():
    def final_size(seed):
        pop = Population(
            initial=5, join_rate=2.0, leave_rate=2.0,
            min_clients=1, max_clients=8, rng=random.Random(seed),
        )
        sizes = [pop.size(t * 0.5) for t in range(100)]
        assert all(1 <= s <= 8 for s in sizes)
        return sizes

    assert final_size(2) == final_size(2)


def test_population_stochastic_requires_bound_and_rng():
    with pytest.raises(ValueError, match="max_clients"):
        Population(initial=5, join_rate=1.0)
    with pytest.raises(ValueError, match="RNG"):
        Population(initial=5, join_rate=1.0, max_clients=10)


# ---------------------------------------------------------------------------
# spec loading and validation
# ---------------------------------------------------------------------------
def _spec_dict(**overrides):
    spec = {
        "name": "t",
        "seed": 3,
        "topology": "lan",
        "settle": 1.0,
        "group": {"replicas": 3},
        "traffic": {
            "arrivals": {"kind": "poisson", "rate": 1.0},
            "churn": {"initial": 5},
            "duration": 3.0,
            "drain": 20.0,
        },
        "faults": [],
        "slos": [{"kind": "accounting", "name": "acct"}],
    }
    spec.update(overrides)
    return spec


def test_spec_round_trips_through_dict():
    spec = load_spec(_spec_dict(faults=[{"at": 1.0, "kind": "crash", "target": "s1"}]))
    again = ScenarioSpec.from_dict(spec.to_dict())
    assert again.to_dict() == spec.to_dict()


def test_spec_rejects_unknown_keys_and_bad_values():
    with pytest.raises(ValueError, match="unknown keys"):
        load_spec(_spec_dict(typo=1))
    with pytest.raises(ValueError, match="topology"):
        load_spec(_spec_dict(topology="mars"))
    with pytest.raises(ValueError, match="unknown fault kind"):
        load_spec(_spec_dict(faults=[{"at": 1.0, "kind": "meteor"}]))
    with pytest.raises(ValueError, match="after the run window"):
        load_spec(_spec_dict(faults=[{"at": 99.0, "kind": "heal"}]))
    with pytest.raises(ValueError, match="unknown SLO kind"):
        load_spec(_spec_dict(slos=[{"kind": "uptime"}]))


def test_fault_event_validation():
    with pytest.raises(ValueError, match="requires a target"):
        FaultEvent(at=1.0, kind="crash")
    with pytest.raises(ValueError, match="factor"):
        FaultEvent(at=1.0, kind="slow_node", target="s0")
    with pytest.raises(ValueError, match="groups/sites"):
        FaultEvent(at=1.0, kind="partition")


# ---------------------------------------------------------------------------
# kernel + run_until_done slicing (satellite)
# ---------------------------------------------------------------------------
def test_run_with_max_events_does_not_skip_clock_past_pending_events():
    sim = Simulator(seed=0)
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, fired.append, t)
    sim.run(until=10.0, max_events=2)
    # capped after two events: the clock must sit at the last executed
    # event, not jump to until=10 past the still-pending event at t=3
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert fired == [1.0, 2.0, 3.0]
    assert sim.now == 10.0


def test_run_until_done_advances_through_many_slices():
    sim = Simulator(seed=0)
    future = Future(name="late")
    # far more events than one max_events slice can hold
    for i in range(5000):
        sim.schedule(i * 1e-3, lambda: None)
    sim.schedule(6.0, future.try_resolve, None)
    run_until_done(sim, [future], deadline=10.0, max_events=512)
    assert future.done
    assert sim.now <= 10.0


def test_run_until_done_raises_on_unresolved_futures():
    sim = Simulator(seed=0)
    with pytest.raises(RuntimeError, match="did not finish"):
        run_until_done(sim, [Future(name="never")], deadline=1.0)


# ---------------------------------------------------------------------------
# fault schedules against a live cluster
# ---------------------------------------------------------------------------
def test_slow_node_scales_cpu_cost_and_restores():
    sim = Simulator(seed=0)
    from repro.net import Network, Topology

    net = Network(sim, Topology.single_lan())
    node = net.new_node("n0", net.topology.sites[0])
    done_at = []
    net.slow_node("n0", 10.0)
    node.execute(1e-3, lambda: done_at.append(sim.now))
    sim.run(until=1.0)
    assert done_at[0] == pytest.approx(10e-3)
    net.slow_node("n0", 1.0)  # restore
    node.execute(1e-3, lambda: done_at.append(sim.now))
    sim.run(until=2.0)
    assert done_at[1] - 1.0 == pytest.approx(1e-3)


def test_fault_schedule_fires_and_logs_relative_times():
    c = AppCluster(servers=2, clients=0)
    c.run(5.0)  # install later than t=0 to check offsets are relative
    schedule = FaultSchedule(
        [
            FaultEvent(at=1.0, kind="crash", target="s1"),
            FaultEvent(at=2.0, kind="slow_node", target="s0", factor=4.0, duration=1.0),
            FaultEvent(at=3.0, kind="recover", target="s1"),
        ]
    )
    schedule.install(c.sim, c.net)
    c.run(10.0)
    assert [entry["kind"] for entry in schedule.log] == [
        "crash", "slow_node", "recover", "slow_node_restored",
    ]
    assert [entry["at"] for entry in schedule.log] == [1.0, 2.0, 3.0, 3.0]
    assert c.net.node("s1").alive
    assert c.net.node("s0").slowdown == 1.0
    assert c.sim.obs.metrics.counter_value("scenario.fault.crash") == 1


# ---------------------------------------------------------------------------
# manager crash under open-loop load (satellite: rebinding end to end)
# ---------------------------------------------------------------------------
def test_manager_crash_mid_burst_rebinds_without_losing_or_duplicating():
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all("svc", Counter, config=FAST)
    binding = c.client(0).bind(
        "svc",
        style=BindingStyle.OPEN,
        restricted=True,
        liveliness=Liveliness.LIVELY,
        suspicion_timeout=100e-3,
    )
    c.run(1.0)
    assert binding.ready.done

    def issue():
        return binding.invoke("incr", (1,), mode=Mode.FIRST, timeout=8.0)

    generator = OpenLoopGenerator(
        c.sim,
        [issue],
        PoissonArrivals(20.0),
        Population(initial=1),
        duration=2.0,
    ).start()
    # crash whoever is the manager right now, mid-burst
    schedule = FaultSchedule([FaultEvent(at=0.8, kind="crash", target="manager")])
    schedule.install(c.sim, c.net, resolve_target=lambda name: binding.manager)
    run_until_done(c.sim, [generator.finished], deadline=c.sim.now + 30.0)

    stats = generator.stats
    assert stats.offered > 10
    assert stats.lost == 0  # every client future resolved
    assert stats.completed + stats.errors == stats.offered
    assert binding.rebinds >= 1  # the smart proxy rebound
    assert schedule.log and schedule.log[0]["kind"] == "crash"
    crashed = schedule.log[0]["target"]
    # call numbers suppressed re-execution of retried calls: every survivor
    # applied each completed incr exactly once
    survivors = [s for s in servers if s.member_id != crashed]
    values = {s.servant.value for s in survivors}
    assert len(values) == 1
    assert values.pop() == stats.completed


# ---------------------------------------------------------------------------
# runner + CLI
# ---------------------------------------------------------------------------
SMOKE_SPEC = {
    "name": "smoke",
    "seed": 7,
    "topology": "lan",
    "settle": 1.0,
    "group": {"replicas": 3},
    "traffic": {
        "arrivals": {"kind": "poisson", "rate": 0.5},
        "churn": {"initial": 10, "steps": [{"at": 1.0, "join": 10}]},
        "duration": 4.0,
        "drain": 20.0,
    },
    "faults": [{"at": 2.0, "kind": "slow_node", "target": "s1", "factor": 4.0, "duration": 1.0}],
    "slos": [
        {"kind": "accounting", "name": "acct"},
        {"kind": "reconciliation", "name": "recon"},
    ],
}


def test_run_scenario_report_is_deterministic():
    first = run_scenario(SMOKE_SPEC)
    second = run_scenario(SMOKE_SPEC)
    first.pop("wall_time_s")
    second.pop("wall_time_s")
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    assert first["passed"]
    assert first["sim"]["drained"]
    assert first["traffic"]["offered"] > 0
    assert first["traffic"]["lost"] == 0
    assert [f["kind"] for f in first["faults"]] == ["slow_node", "slow_node_restored"]
    assert first["metrics"]["counters"]["scenario.offered"] == first["traffic"]["offered"]


def test_run_scenario_failing_slo_sets_passed_false():
    spec = dict(SMOKE_SPEC)
    spec["slos"] = [{"kind": "latency", "name": "impossible", "stat": "p95", "max_ms": 1e-4}]
    report = run_scenario(spec)
    assert not report["passed"]
    assert report["slos"][0]["ok"] is False


def test_cli_run_exit_codes(tmp_path, capsys):
    passing = tmp_path / "pass.json"
    passing.write_text(json.dumps(SMOKE_SPEC))
    failing_spec = dict(SMOKE_SPEC)
    failing_spec["name"] = "doomed"
    failing_spec["slos"] = [{"kind": "latency", "name": "impossible", "stat": "p95", "max_ms": 1e-4}]
    failing = tmp_path / "fail.json"
    failing.write_text(json.dumps(failing_spec))
    out = tmp_path / "report.json"

    assert scenario_main(["run", str(passing), "--quiet", "--output", str(out)]) == 0
    assert json.loads(out.read_text())["passed"] is True
    assert scenario_main(["run", str(failing), "--quiet"]) == 1
    captured = capsys.readouterr()
    assert "FAIL doomed" in captured.out

    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert scenario_main(["run", str(broken)]) == 2
    assert scenario_main(["validate", str(passing)]) == 0
    assert scenario_main(["validate", str(broken)]) == 2


def test_peer_workload_scenario():
    report = run_scenario(
        {
            "name": "peer-smoke",
            "seed": 3,
            "topology": "lan",
            "settle": 1.5,
            "group": {"replicas": 3, "liveliness": "lively", "suspicion_timeout": 2.0},
            "traffic": {
                "arrivals": {"kind": "poisson", "rate": 0.5},
                "churn": {"initial": 4},
                "duration": 3.0,
                "drain": 20.0,
                "workload": "peer",
                "timeout": 10.0,
            },
            "slos": [{"kind": "accounting", "name": "acct"}],
        }
    )
    assert report["passed"]
    assert report["workload"] == "peer"
    assert report["traffic"]["completed"] == report["traffic"]["offered"] > 0


def test_max_in_flight_sheds_load():
    spec = json.loads(json.dumps(SMOKE_SPEC))
    spec["traffic"]["arrivals"] = {"kind": "poisson", "rate": 40.0}
    spec["traffic"]["duration"] = 1.0
    spec["traffic"]["max_in_flight"] = 2
    spec["slos"] = [{"kind": "accounting", "name": "acct"}]
    report = run_scenario(spec)
    assert report["traffic"]["shed"] > 0
    assert report["traffic"]["lost"] == 0
    assert report["passed"]  # shedding is accounted, not lost


# ---------------------------------------------------------------------------
# OpenLoopClient (bench satellite)
# ---------------------------------------------------------------------------
def test_open_loop_client_wraps_arrivals_for_benchmarks():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter, config=FAST)
    binding = c.client(0).bind(
        "svc",
        style=BindingStyle.CLOSED,
        liveliness=Liveliness.LIVELY,
        suspicion_timeout=100e-3,
    )
    c.run(1.0)
    assert binding.ready.done
    client = OpenLoopClient(
        c.sim, binding, rate=50.0, operation="incr", args=(1,),
        mode=Mode.ALL, requests=40, timeout=10.0,
    )
    run_until_done(c.sim, [client.done], deadline=c.sim.now + 30.0)
    assert client.issued == 40
    assert client.in_flight == 0
    assert client.errors == 0
    assert len(client.latencies.values) == 40
