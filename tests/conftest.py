"""Shared test fixtures: simulated clusters with ORBs and NewTop services."""

from typing import Dict, List, Optional

import pytest

from repro.groupcomm import GroupCommService
from repro.net import Network, Topology
from repro.orb import ORB
from repro.sim import Simulator


class Cluster:
    """N nodes on one topology, each with an ORB and a GroupCommService."""

    def __init__(
        self,
        count: int = 3,
        topology: Optional[Topology] = None,
        seed: int = 1,
        sites: Optional[List[str]] = None,
        prefix: str = "n",
    ):
        self.sim = Simulator(seed=seed)
        self.topology = topology or Topology.single_lan()
        self.net = Network(self.sim, self.topology)
        self.names: List[str] = []
        self.orbs: Dict[str, ORB] = {}
        self.services: Dict[str, GroupCommService] = {}
        for i in range(count):
            name = f"{prefix}{i}"
            site = sites[i] if sites else self.topology.sites[0]
            node = self.net.new_node(name, site)
            orb = ORB(node)
            self.names.append(name)
            self.orbs[name] = orb
            self.services[name] = GroupCommService(orb)

    def service(self, index: int) -> GroupCommService:
        return self.services[self.names[index]]

    def orb(self, index: int) -> ORB:
        return self.orbs[self.names[index]]

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_all(self) -> None:
        self.sim.run()


class Collector:
    """Listener recording deliveries and views for one session."""

    def __init__(self, session=None):
        self.deliveries = []
        self.views = []
        if session is not None:
            self.attach(session)

    def attach(self, session) -> None:
        session.on_deliver = self.on_deliver
        session.on_view = self.on_view

    def on_deliver(self, sender, payload) -> None:
        self.deliveries.append((sender, payload))

    def on_view(self, view, joined, left) -> None:
        self.views.append((view, list(joined), list(left)))

    @property
    def payloads(self):
        return [payload for _sender, payload in self.deliveries]


@pytest.fixture
def cluster():
    return Cluster


@pytest.fixture
def collector():
    return Collector
