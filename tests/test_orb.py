"""Tests for the mini-ORB: invocation, errors, oneway, local calls, proxies."""

import pytest

from repro.errors import ApplicationError, BadOperation, CommFailure, ObjectNotFound
from repro.net import Network, Topology
from repro.orb import (
    CountingInterceptor,
    GroupProxy,
    IOGR,
    NameServer,
    NamingClient,
    ORB,
    TraceInterceptor,
)
from repro.sim import Future, Simulator, run_process, sleep


class Echo:
    """Test servant."""

    def __init__(self):
        self.calls = []

    def echo(self, value):
        self.calls.append(value)
        return value

    def add(self, a, b):
        return a + b

    def boom(self):
        raise ValueError("kapow")

    def fire_and_forget(self, value):
        self.calls.append(value)

    def _private(self):
        return "secret"


class DeferredServant:
    """Servant whose reply is produced later via a Future."""

    def __init__(self, sim):
        self.sim = sim

    def slow(self):
        fut = Future()
        self.sim.schedule(0.05, fut.resolve, "eventually")
        return fut


def setup_pair(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, Topology.single_lan())
    client_node = net.new_node("client", "lan")
    server_node = net.new_node("server", "lan")
    return sim, net, ORB(client_node), ORB(server_node)


def test_remote_invocation_returns_value():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())

    def proc():
        value = yield client.invoke(ior, "add", (2, 3))
        return value

    assert run_process(sim, proc()) == 5


def test_remote_invocation_pays_network_time():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())

    def proc():
        yield client.invoke(ior, "echo", ("x",))
        return sim.now

    elapsed = run_process(sim, proc())
    assert 2e-4 < elapsed < 5e-3  # two LAN hops plus CPU


def test_servant_exception_propagates():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())

    def proc():
        try:
            yield client.invoke(ior, "boom", ())
        except ApplicationError as exc:
            return str(exc)

    assert "kapow" in run_process(sim, proc())


def test_unknown_object_raises_object_not_found():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())
    server.deactivate(ior)

    def proc():
        try:
            yield client.invoke(ior, "echo", ("x",))
        except ObjectNotFound:
            return "not-found"

    assert run_process(sim, proc()) == "not-found"


def test_unknown_operation_raises_application_error():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())

    def proc():
        try:
            yield client.invoke(ior, "nosuch", ())
        except ApplicationError:
            return "bad-op"

    assert run_process(sim, proc()) == "bad-op"


def test_private_methods_not_invocable():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())

    def proc():
        try:
            yield client.invoke(ior, "_private", ())
        except ApplicationError:
            return "denied"

    assert run_process(sim, proc()) == "denied"


def test_oneway_resolves_immediately_and_delivers():
    sim, net, client, server = setup_pair()
    servant = Echo()
    ior = server.register(servant)
    fut = client.invoke(ior, "fire_and_forget", ("msg",), oneway=True)
    assert fut.done  # resolved before any network delivery
    sim.run()
    assert servant.calls == ["msg"]


def test_local_invocation_bypasses_network():
    sim, net, client, server = setup_pair()
    servant = Echo()
    ior = client.register(servant)  # servant on the *client's* node

    def proc():
        value = yield client.invoke(ior, "echo", ("local",))
        return value, sim.now

    value, elapsed = run_process(sim, proc())
    assert value == "local"
    assert net.stats.messages_sent == 0
    assert elapsed < 1e-4


def test_timeout_on_crashed_server():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())
    net.crash("server")

    def proc():
        try:
            yield client.invoke(ior, "echo", ("x",), timeout=0.1)
        except CommFailure:
            return "timed-out"

    assert run_process(sim, proc()) == "timed-out"


def test_deferred_servant_reply():
    sim, net, client, server = setup_pair()
    ior = server.register(DeferredServant(sim))

    def proc():
        value = yield client.invoke(ior, "slow", ())
        return value

    assert run_process(sim, proc()) == "eventually"


def test_concurrent_invocations_multiplex_correctly():
    sim, net, client, server = setup_pair()
    ior = server.register(Echo())

    def proc():
        futs = [client.invoke(ior, "echo", (i,)) for i in range(10)]
        from repro.sim import all_of

        values = yield all_of(futs)
        return values

    assert run_process(sim, proc()) == list(range(10))


def test_interceptors_observe_flow():
    sim, net, client, server = setup_pair()
    trace = TraceInterceptor()
    counts = CountingInterceptor()
    client.add_interceptor(trace)
    server.add_interceptor(counts)
    ior = server.register(Echo())

    def proc():
        yield client.invoke(ior, "echo", ("x",))

    run_process(sim, proc())
    assert trace.operations("send_request") == ["echo"]
    assert len(trace.operations("receive_reply")) == 1
    assert counts.requests_received == 1
    assert counts.replies_sent == 1


def test_name_server_bind_resolve():
    sim, net, client, server = setup_pair()
    ns_ref = server.register(NameServer(), object_id="NameService")
    naming = NamingClient(client, ns_ref)
    target = server.register(Echo())

    def proc():
        yield naming.bind("echo-svc", target)
        resolved = yield naming.resolve("echo-svc")
        value = yield client.invoke(resolved, "add", (1, 1))
        names = yield naming.list_names()
        return value, names

    value, names = run_process(sim, proc())
    assert value == 2
    assert names == ["echo-svc"]


def test_name_server_duplicate_bind_fails_but_rebind_works():
    sim, net, client, server = setup_pair()
    ns_ref = server.register(NameServer(), object_id="NameService")
    naming = NamingClient(client, ns_ref)
    target = server.register(Echo())

    def proc():
        yield naming.bind("svc", target)
        try:
            yield naming.bind("svc", target)
        except ApplicationError:
            pass
        else:
            raise AssertionError("duplicate bind should fail")
        yield naming.rebind("svc", target)
        missing = yield naming.unbind("nosuch")
        return missing

    assert run_process(sim, proc()) is False


def test_group_proxy_fails_over_to_next_profile():
    sim = Simulator(seed=2)
    net = Network(sim, Topology.single_lan())
    client_node = net.new_node("client", "lan")
    s1 = net.new_node("s1", "lan")
    s2 = net.new_node("s2", "lan")
    client = ORB(client_node)
    orb1, orb2 = ORB(s1), ORB(s2)
    ior1 = orb1.register(Echo(), object_id="e")
    ior2 = orb2.register(Echo(), object_id="e")
    proxy = GroupProxy(client, IOGR([ior1, ior2]), timeout=0.05)
    net.crash("s1")

    def proc():
        value = yield proxy.invoke("add", (4, 4))
        return value

    assert run_process(sim, proc()) == 8
    assert proxy.failovers == 1
    assert proxy.current_ref == ior2


def test_group_proxy_all_profiles_down():
    sim = Simulator(seed=2)
    net = Network(sim, Topology.single_lan())
    client = ORB(net.new_node("client", "lan"))
    orb1 = ORB(net.new_node("s1", "lan"))
    ior1 = orb1.register(Echo())
    proxy = GroupProxy(client, IOGR([ior1]), timeout=0.05)
    net.crash("s1")

    def proc():
        try:
            yield proxy.invoke("echo", ("x",))
        except CommFailure:
            return "down"

    assert run_process(sim, proc()) == "down"


def test_group_proxy_does_not_fail_over_on_application_error():
    sim = Simulator(seed=2)
    net = Network(sim, Topology.single_lan())
    client = ORB(net.new_node("client", "lan"))
    orb1 = ORB(net.new_node("s1", "lan"))
    orb2 = ORB(net.new_node("s2", "lan"))
    ior1 = orb1.register(Echo())
    ior2 = orb2.register(Echo())
    proxy = GroupProxy(client, IOGR([ior1, ior2]), timeout=0.05)

    def proc():
        try:
            yield proxy.invoke("boom", ())
        except ApplicationError:
            return proxy.failovers

    assert run_process(sim, proc()) == 0
