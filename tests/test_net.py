"""Tests for the network substrate: topology, latency, CPU, partitions."""

import pytest

from repro.net import (
    CpuProfile,
    FixedLatency,
    JitteredLatency,
    Network,
    Node,
    Topology,
)
from repro.sim import Simulator


def make_lan(sim=None):
    sim = sim or Simulator(seed=1)
    net = Network(sim, Topology.single_lan())
    return sim, net


def test_fixed_latency_is_constant():
    sim = Simulator()
    model = FixedLatency(0.01)
    assert model.sample(sim.rng("x")) == 0.01
    assert model.mean == 0.01


def test_jittered_latency_within_bounds():
    sim = Simulator()
    rng = sim.rng("lat")
    model = JitteredLatency(10e-3, jitter=0.2)
    samples = [model.sample(rng) for _ in range(1000)]
    assert all(5e-3 <= s <= 30e-3 for s in samples)
    mean = sum(samples) / len(samples)
    assert abs(mean - 10e-3) < 1e-3


def test_latency_validation():
    with pytest.raises(ValueError):
        FixedLatency(-1)
    with pytest.raises(ValueError):
        JitteredLatency(0)


def test_topology_intra_vs_inter_links():
    topo = Topology.paper_wan()
    lan = topo.link("newcastle", "newcastle")
    wan = topo.link("newcastle", "pisa")
    assert lan.latency.mean < 1e-3
    assert wan.latency.mean > 5e-3
    # symmetric lookup
    assert topo.link("pisa", "newcastle") is wan


def test_topology_unknown_site_rejected():
    topo = Topology.single_lan()
    with pytest.raises(KeyError):
        topo.link("lan", "mars")


def test_topology_missing_link_uses_default_wan():
    topo = Topology()
    topo.add_site("a")
    topo.add_site("b")
    with pytest.raises(KeyError):
        topo.link("a", "b")
    topo.set_default_wan(FixedLatency(0.02))
    assert topo.link("a", "b").latency.mean == 0.02


def test_duplicate_site_rejected():
    topo = Topology()
    topo.add_site("a")
    with pytest.raises(ValueError):
        topo.add_site("a")


def test_message_delivery_between_nodes():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    b = net.new_node("b", "lan")
    received = []
    b.register("test", lambda src, payload, size: received.append((src, payload)))
    a.send("b", "test", b"hello", 100)
    sim.run()
    assert received == [("a", b"hello")]
    assert sim.now > 0  # latency + cpu elapsed


def test_delivery_pays_latency_and_cpu():
    sim = Simulator(seed=1)
    topo = Topology()
    topo.add_site("lan", FixedLatency(1e-3))
    net = Network(sim, topo)
    a = net.new_node("a", "lan", cpu=CpuProfile(send_overhead=1e-4, recv_overhead=1e-4, per_byte=0))
    b = net.new_node("b", "lan", cpu=CpuProfile(send_overhead=1e-4, recv_overhead=1e-4, per_byte=0))
    times = []
    b.register("test", lambda *_: times.append(sim.now))
    a.send("b", "test", b"", 0)
    sim.run()
    # send cpu (0.1ms) + latency (1ms) + recv cpu (0.1ms)
    assert times[0] == pytest.approx(1.2e-3, rel=1e-6)


def test_fifo_per_link_pair():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    b = net.new_node("b", "lan")
    received = []
    b.register("test", lambda src, payload, size: received.append(payload))
    for i in range(50):
        a.send("b", "test", i, 64)
    sim.run()
    assert received == list(range(50))


def test_cpu_serialises_work():
    sim = Simulator()
    topo = Topology.single_lan()
    net = Network(sim, topo)
    node = net.new_node("n", "lan")
    finish_times = []
    node.execute(1.0, lambda: finish_times.append(sim.now))
    node.execute(1.0, lambda: finish_times.append(sim.now))
    sim.run()
    assert finish_times == [1.0, 2.0]
    assert node.busy_time == 2.0


def test_cpu_utilisation():
    sim, net = make_lan(Simulator())
    node = net.new_node("n", "lan")
    node.execute(2.0, lambda: None)
    sim.run()
    assert node.utilisation(4.0) == pytest.approx(0.5)
    assert node.utilisation(0.0) == 0.0


def test_crash_drops_inbound_and_queued_work():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    b = net.new_node("b", "lan")
    received = []
    b.register("test", lambda src, payload, size: received.append(payload))
    a.send("b", "test", 1, 64)
    sim.run()
    b.crash()
    a.send("b", "test", 2, 64)
    sim.run()
    assert received == [1]
    assert net.stats.messages_dropped >= 1


def test_recovered_node_receives_again():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    b = net.new_node("b", "lan")
    received = []
    b.register("test", lambda src, payload, size: received.append(payload))
    b.crash()
    a.send("b", "test", 1, 64)
    sim.run()
    b.recover()
    a.send("b", "test", 2, 64)
    sim.run()
    assert received == [2]


def test_partition_blocks_cross_group_traffic():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    b = net.new_node("b", "lan")
    c = net.new_node("c", "lan")
    received = {name: [] for name in "abc"}
    for node, name in ((a, "a"), (b, "b"), (c, "c")):
        node.register("test", lambda src, payload, size, name=name: received[name].append(payload))
    net.partition({"a", "b"})
    a.send("b", "test", "ab", 64)
    a.send("c", "test", "ac", 64)
    c.send("a", "test", "ca", 64)
    sim.run()
    assert received["b"] == ["ab"]
    assert received["c"] == []
    assert received["a"] == []
    net.heal()
    a.send("c", "test", "ac2", 64)
    sim.run()
    assert received["c"] == ["ac2"]


def test_partition_sites():
    sim = Simulator(seed=3)
    net = Network(sim, Topology.paper_wan())
    a = net.new_node("a", "newcastle")
    b = net.new_node("b", "pisa")
    got = []
    b.register("t", lambda *args: got.append(args[1]))
    net.partition_sites({"newcastle", "london"}, {"pisa"})
    a.send("b", "t", "x", 10)
    sim.run()
    assert got == []
    assert not net.reachable("a", "b")
    assert net.reachable("b", "b")


def test_lossy_link_drops_messages():
    sim = Simulator(seed=5)
    topo = Topology()
    topo.add_site("lan", FixedLatency(1e-4), loss=0.5)
    net = Network(sim, topo)
    a = net.new_node("a", "lan")
    b = net.new_node("b", "lan")
    got = []
    b.register("t", lambda src, p, s: got.append(p))
    for i in range(200):
        a.send("b", "t", i, 10)
    sim.run()
    assert 40 < len(got) < 160  # roughly half arrive
    assert net.stats.messages_dropped == 200 - len(got)


def test_stats_counters():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    b = net.new_node("b", "lan")
    b.register("svc", lambda *_: None)
    a.send("b", "svc", "x", 128)
    sim.run()
    snap = net.stats.snapshot()
    assert snap["sent"] == 1
    assert snap["delivered"] == 1
    assert snap["bytes"] == 128
    assert net.stats.per_service_sent["svc"] == 1


def test_unknown_service_silently_dropped():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    net.new_node("b", "lan")
    a.send("b", "nosuch", "x", 10)
    sim.run()  # must not raise


def test_duplicate_node_name_rejected():
    sim, net = make_lan()
    net.new_node("a", "lan")
    with pytest.raises(ValueError):
        net.new_node("a", "lan")


def test_node_at_unknown_site_rejected():
    sim, net = make_lan()
    with pytest.raises(KeyError):
        net.attach(Node(sim, "x", "mars"))


def test_duplicate_service_registration_rejected():
    sim, net = make_lan()
    a = net.new_node("a", "lan")
    a.register("svc", lambda *_: None)
    with pytest.raises(ValueError):
        a.register("svc", lambda *_: None)
