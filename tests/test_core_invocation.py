"""Invocation-layer tests: closed/open bindings, modes, failures, g2g."""

import pytest

from repro.core import BindingStyle, Mode, ReplicationPolicy
from repro.errors import ApplicationError, BindingBroken
from repro.groupcomm import GroupConfig, Liveliness, Ordering
from repro.sim import run_process
from tests.core_helpers import AppCluster, Counter, bind_scheme as bound_binding


LIVELY_FAST = GroupConfig(
    ordering=Ordering.ASYMMETRIC,
    liveliness=Liveliness.LIVELY,
    silence_period=20e-3,
    suspicion_timeout=100e-3,
)


# ---------------------------------------------------------------------------
# closed groups
# ---------------------------------------------------------------------------
def test_closed_wait_all_gets_reply_from_every_server():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.CLOSED)

    def proc():
        result = yield binding.invoke("incr", (5,), mode=Mode.ALL)
        return result

    result = run_process(c.sim, proc(), until=c.sim.now + 2.0)
    assert len(result) == 3
    assert set(result.by_member()) == {"s0", "s1", "s2"}
    assert result.values() == [5, 5, 5]


def test_closed_wait_first_and_majority_counts():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.CLOSED)

    def proc():
        first = yield binding.invoke("get", (), mode=Mode.FIRST)
        majority = yield binding.invoke("get", (), mode=Mode.MAJORITY)
        return first, majority

    first, majority = run_process(c.sim, proc(), until=c.sim.now + 2.0)
    assert len(first) >= 1
    assert len(majority) >= 2


def test_closed_one_way_executes_everywhere_without_reply():
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.CLOSED)
    fut = binding.invoke("incr", (1,), mode=Mode.ONE_WAY)
    assert fut.done and fut.result() is None
    c.run(1.0)
    assert [s.servant.value for s in servers] == [1, 1, 1]


def test_closed_active_replicas_stay_consistent_under_two_clients():
    c = AppCluster(servers=3, clients=2)
    servers = c.serve_all("svc", Counter)
    b0 = bound_binding(c, style=BindingStyle.CLOSED)
    b1 = c.client(1).bind("svc", style=BindingStyle.CLOSED)
    c.run(1.0)
    assert b1.ready.done

    def client_proc(binding, n):
        for _ in range(n):
            yield binding.invoke("incr", (1,), mode=Mode.ALL)

    from repro.sim import spawn

    p0 = spawn(c.sim, client_proc(b0, 10))
    p1 = spawn(c.sim, client_proc(b1, 10))
    c.run(5.0)
    assert p0.done and p1.done
    values = [s.servant.value for s in servers]
    assert values == [20, 20, 20]


def test_closed_masks_server_failure():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter, config=LIVELY_FAST)
    binding = bound_binding(
        c, style=BindingStyle.CLOSED, liveliness=Liveliness.LIVELY
    )
    c.net.crash("s2")
    fut = binding.invoke("incr", (1,), mode=Mode.ALL)
    c.run(3.0)
    # the crashed server is removed from the view; ALL = the two survivors
    assert fut.done and not fut.failed
    assert len(fut.result()) == 2
    assert binding.rebinds == 0  # no rebinding needed in closed groups


# ---------------------------------------------------------------------------
# open groups
# ---------------------------------------------------------------------------
def test_open_binding_uses_designated_manager():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.OPEN, restricted=True)
    assert binding.manager == "s0"  # restricted: the server group's head

    def proc():
        result = yield binding.invoke("incr", (2,), mode=Mode.ALL)
        return result

    result = run_process(c.sim, proc(), until=c.sim.now + 2.0)
    assert len(result) == 3
    assert result.values() == [2, 2, 2]


def test_open_client_group_has_exactly_two_members():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.OPEN)
    gc = c.client(0).gcs.session(binding.group_name)
    assert sorted(gc.view.members) == ["c0", "s0"]


def test_open_wait_first():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.OPEN)

    def proc():
        value = yield binding.call("incr", (3,), mode=Mode.FIRST)
        return value

    assert run_process(c.sim, proc(), until=c.sim.now + 2.0) == 3


def test_open_manager_failure_rebinds_and_retries():
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all("svc", Counter, config=LIVELY_FAST)
    binding = bound_binding(
        c, style=BindingStyle.OPEN, restricted=True, liveliness=Liveliness.LIVELY
    )
    assert binding.manager == "s0"

    def proc():
        yield binding.invoke("incr", (1,), mode=Mode.ALL)

    run_process(c.sim, proc(), until=c.sim.now + 2.0)
    c.net.crash("s0")
    fut = binding.invoke("incr", (1,), mode=Mode.MAJORITY)
    c.run(5.0)
    assert fut.done and not fut.failed
    assert binding.rebinds >= 1
    assert binding.manager in ("s1", "s2")
    # no double execution despite the retry: survivors agree on value 2
    assert [s.servant.value for s in servers[1:]] == [2, 2]


def test_open_no_auto_rebind_breaks_binding():
    c = AppCluster(servers=2, clients=1)
    c.serve_all("svc", Counter, config=LIVELY_FAST)
    binding = bound_binding(
        c,
        style=BindingStyle.OPEN,
        restricted=True,
        auto_rebind=False,
        liveliness=Liveliness.LIVELY,
    )
    c.net.crash("s0")
    fut = binding.invoke("get", (), mode=Mode.FIRST)
    c.run(3.0)
    assert fut.failed and isinstance(fut.exception, BindingBroken)


def test_unrestricted_manager_is_some_member():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.OPEN, restricted=False)
    assert binding.manager in ("s0", "s1", "s2")


def test_manager_override():
    c = AppCluster(servers=3, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.OPEN, manager="s1")
    assert binding.manager == "s1"


# ---------------------------------------------------------------------------
# optimisations: async forwarding / passive replication
# ---------------------------------------------------------------------------
def test_async_forwarding_wait_first_single_reply():
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all("svc", Counter, async_forwarding=True)
    binding = bound_binding(c, style=BindingStyle.OPEN, restricted=True)

    def proc():
        result = yield binding.invoke("incr", (1,), mode=Mode.FIRST)
        return result

    result = run_process(c.sim, proc(), until=c.sim.now + 2.0)
    assert len(result) == 1
    assert result.replies[0].member == "s0"
    c.run(1.0)
    # the one-way forward still executed at the other members (active)
    assert [s.servant.value for s in servers] == [1, 1, 1]


def test_passive_replication_primary_executes_backups_track_state():
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all(
        "svc", Counter, policy=ReplicationPolicy.PASSIVE, async_forwarding=True
    )
    binding = bound_binding(c, style=BindingStyle.OPEN, restricted=True)

    def proc():
        for _ in range(3):
            yield binding.invoke("incr", (1,), mode=Mode.FIRST)

    run_process(c.sim, proc(), until=c.sim.now + 3.0)
    assert servers[0].is_primary
    c.run(1.0)
    # backups received state updates without executing
    assert [s.servant.value for s in servers] == [3, 3, 3]


def test_passive_failover_preserves_state():
    c = AppCluster(servers=3, clients=1)
    servers = c.serve_all(
        "svc",
        Counter,
        policy=ReplicationPolicy.PASSIVE,
        async_forwarding=True,
        config=LIVELY_FAST,
    )
    binding = bound_binding(
        c, style=BindingStyle.OPEN, restricted=True, liveliness=Liveliness.LIVELY
    )

    def proc():
        for _ in range(3):
            yield binding.invoke("incr", (1,), mode=Mode.FIRST)

    run_process(c.sim, proc(), until=c.sim.now + 3.0)
    c.net.crash("s0")
    fut = binding.invoke("incr", (1,), mode=Mode.FIRST)
    c.run(5.0)
    assert fut.done and not fut.failed
    assert fut.result().value == 4  # state carried over: 3 + 1
    assert servers[1].is_primary or servers[2].is_primary


# ---------------------------------------------------------------------------
# errors and edge cases
# ---------------------------------------------------------------------------
def test_servant_exception_reaches_client():
    c = AppCluster(servers=2, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.OPEN)

    def proc():
        result = yield binding.invoke("fail", (), mode=Mode.FIRST)
        return result

    result = run_process(c.sim, proc(), until=c.sim.now + 2.0)
    assert not result.replies[0].ok
    with pytest.raises(ApplicationError):
        _ = result.value


def test_bind_to_unknown_service_fails():
    c = AppCluster(servers=1, clients=1)
    binding = c.client(0).bind("nosuch")
    c.run(1.0)
    assert binding.ready.failed


def test_invoke_timeout():
    from repro.errors import CommFailure

    c = AppCluster(servers=2, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.OPEN)
    c.net.crash("s0")  # manager dead, event-driven: no detection, no reply
    fut = binding.invoke("get", (), mode=Mode.FIRST, timeout=0.5)
    c.run(2.0)
    assert fut.failed and isinstance(fut.exception, CommFailure)


def test_closed_binding_close_releases_servers():
    c = AppCluster(servers=2, clients=1)
    c.serve_all("svc", Counter)
    binding = bound_binding(c, style=BindingStyle.CLOSED)
    gc_name = binding.group_name
    binding.close()
    c.run(2.0)
    # servers noticed the client's departure and left the disbanded group
    assert c.server(0).gcs.session(gc_name) is None
    assert c.server(1).gcs.session(gc_name) is None


def test_joining_server_receives_state_transfer():
    c = AppCluster(servers=3, clients=1)
    # start only two members first
    s0 = c.server(0).serve("svc", Counter())
    c.run(0.3)
    s1 = c.server(1).serve("svc", Counter())
    c.run(0.5)
    binding = bound_binding(c, style=BindingStyle.OPEN)

    def proc():
        for _ in range(4):
            yield binding.invoke("incr", (1,), mode=Mode.ALL)

    run_process(c.sim, proc(), until=c.sim.now + 3.0)
    late = c.server(2).serve("svc", Counter())
    c.run(2.0)
    assert late.ready.done
    assert late.servant.value == 4  # state transferred on join


# ---------------------------------------------------------------------------
# group-to-group
# ---------------------------------------------------------------------------
def test_group_to_group_invocation():
    c = AppCluster(servers=3, clients=2)
    servers = c.serve_all("svc", Counter)
    # gx = {c0, c1}: a peer group of clients
    gx0 = c.client(0).create_peer_group("gx")
    gx1 = c.client(1).join_peer_group("gx", "c0")
    c.run(1.0)
    b0 = c.client(0).bind_group_to_group("gx", ["c0", "c1"], "svc")
    b1 = c.client(1).bind_group_to_group("gx", ["c0", "c1"], "svc")
    c.run(1.0)
    assert b0.ready.done and b1.ready.done

    fut0 = b0.invoke("incr", (1,), mode=Mode.ALL)
    fut1 = b1.invoke("incr", (1,), mode=Mode.ALL)
    c.run(2.0)
    assert fut0.done and fut1.done
    r0, r1 = fut0.result(), fut1.result()
    # both gx members got the full reply set, atomically
    assert len(r0) == 3 and len(r1) == 3
    # the manager filtered duplicates: the call executed exactly once
    assert [s.servant.value for s in servers] == [1, 1, 1]


def test_group_to_group_one_way():
    c = AppCluster(servers=2, clients=2)
    servers = c.serve_all("svc", Counter)
    c.client(0).create_peer_group("gx")
    c.client(1).join_peer_group("gx", "c0")
    c.run(1.0)
    b0 = c.client(0).bind_group_to_group("gx", ["c0", "c1"], "svc")
    b1 = c.client(1).bind_group_to_group("gx", ["c0", "c1"], "svc")
    c.run(1.0)
    b0.invoke("incr", (5,), mode=Mode.ONE_WAY)
    b1.invoke("incr", (5,), mode=Mode.ONE_WAY)
    c.run(2.0)
    assert [s.servant.value for s in servers] == [5, 5]
