"""Conferencing over the Internet: peer participation (§5.2, fig. 1 ii).

Participants in Newcastle, London, and Pisa share an IRC-style channel and
a collaborative whiteboard through lively peer groups.  Every participant
sees the same totally ordered transcript and converges to the same board —
the property groupware needs — and the example shows why the paper
recommends the *symmetric* ordering protocol for this workload.

Run:  python examples/conference.py
"""

from repro.apps import ChatMember, WhiteboardMember, make_peer_config
from repro.core import NewTopService
from repro.groupcomm import Ordering
from repro.net import Network, Topology
from repro.orb import ORB
from repro.sim import Simulator

PEOPLE = [
    ("geoff", "newcastle"),
    ("santosh", "newcastle"),
    ("lindsay", "london"),
    ("paola", "pisa"),
]


def build_services(sim):
    net = Network(sim, Topology.paper_wan())
    return {
        name: NewTopService(ORB(net.new_node(name, site)))
        for name, site in PEOPLE
    }


def main():
    sim = Simulator(seed=99)
    services = build_services(sim)
    names = [name for name, _site in PEOPLE]

    # --- chat channel (symmetric ordering, as the paper recommends) ------
    config = make_peer_config(ordering=Ordering.SYMMETRIC)
    first = services[names[0]]
    sessions = {names[0]: first.create_peer_group("channel", config)}
    for name in names[1:]:
        sessions[name] = services[name].join_peer_group("channel", names[0])
        sim.run(until=sim.now + 0.3)
    sim.run(until=sim.now + 1.0)

    members = {name: ChatMember(sessions[name], nickname=name) for name in names}
    print("channel members:", sessions[names[0]].members)

    members["geoff"].say("shall we review the DSN camera-ready?")
    members["lindsay"].say("yes - section 5 graphs need legends")
    sim.run(until=sim.now + 0.1)
    members["paola"].say("the Pisa runs finished overnight")
    members["santosh"].say("I'll merge the numbers today")
    sim.run(until=sim.now + 2.0)

    transcripts = {name: tuple(member.lines) for name, member in members.items()}
    reference = transcripts[names[0]]
    print("\ntranscript as seen by every member (identical everywhere):")
    for line in reference:
        print("  ", line)
    assert all(t == reference for t in transcripts.values()), "transcripts diverged!"
    print("all", len(transcripts), "transcripts identical:", True)

    # --- shared whiteboard ------------------------------------------------
    print("\nshared whiteboard:")
    wb_config = make_peer_config(ordering=Ordering.SYMMETRIC)
    wb_sessions = {names[0]: first.create_peer_group("board", wb_config)}
    for name in names[1:]:
        wb_sessions[name] = services[name].join_peer_group("board", names[0])
        sim.run(until=sim.now + 0.3)
    sim.run(until=sim.now + 1.0)
    boards = {name: WhiteboardMember(wb_sessions[name]) for name in names}

    boards["geoff"].draw([(0, 0), (10, 10)], colour="blue")
    boards["paola"].draw([(5, 5), (15, 5)], colour="red")
    stroke = boards["lindsay"].draw([(1, 9), (9, 1)], colour="green")
    sim.run(until=sim.now + 1.0)
    boards["lindsay"].erase(stroke)
    sim.run(until=sim.now + 1.0)

    digests = {name: board.digest() for name, board in boards.items()}
    print("  strokes on each board:", {n: len(b) for n, b in boards.items()})
    print("  boards converged:", len(set(digests.values())) == 1)
    assert len(set(digests.values())) == 1

    print("\nconference demo complete at simulated t=%.3fs" % sim.now)


if __name__ == "__main__":
    main()
