"""Group-to-group invocation (§4.3): a replicated client group invokes a
replicated server group through one request manager and a client monitor
group.

Scenario: a replicated *pricing* front-end (group gx of two members, kept
consistent by peer multicasts) needs quotes from a replicated *inventory*
service (group gy of three members).  Each gx member issues its copy of the
call; the request manager filters the duplicates, forwards one into gy,
and multicasts the reply set in the monitor group gz so both gx members
receive the replies atomically.

Run:  python examples/group_to_group.py
"""

from repro.apps import KVStoreServant
from repro.core import Mode, NewTopService
from repro.net import Network, Topology
from repro.orb import NameServer, ORB
from repro.sim import Simulator, all_of, spawn


def main():
    sim = Simulator(seed=21)
    net = Network(sim, Topology.single_lan("dc"))
    registry_orb = ORB(net.new_node("registry", "dc"))
    ns = registry_orb.register(NameServer(), object_id="NameService")

    def newtop(name):
        return NewTopService(ORB(net.new_node(name, "dc")), name_server=ns)

    # --- server group gy: replicated inventory ---------------------------
    inventory_servers = []
    for i in range(3):
        service = newtop(f"inv{i}")
        inventory_servers.append(service.serve("inventory", KVStoreServant()))
        sim.run(until=sim.now + 0.3)
    sim.run(until=sim.now + 0.5)
    print("inventory group gy:", inventory_servers[0].members)

    # --- client group gx: two pricing front-ends -------------------------
    pricing = {name: newtop(name) for name in ("price0", "price1")}
    gx = pricing["price0"].gcs.create_group("gx")
    pricing["price1"].gcs.join_group("gx", "price0")
    sim.run(until=sim.now + 1.0)
    print("pricing group gx:", gx.members)

    # --- the gz monitor group binds gx to gy ------------------------------
    bindings = {
        name: service.bind_group_to_group("gx", ["price0", "price1"], "inventory")
        for name, service in pricing.items()
    }
    sim.run(until=sim.now + 1.0)
    assert all(b.ready.done for b in bindings.values())
    print("monitor group gz manager:", bindings["price0"].manager)

    def scenario():
        # every gx member issues the same calls, in the same order
        futures = [
            bindings["price0"].invoke("put", ("widget", 41), mode=Mode.ALL),
            bindings["price1"].invoke("put", ("widget", 41), mode=Mode.ALL),
        ]
        yield all_of(futures)
        futures = [
            bindings["price0"].invoke("get", ("widget",), mode=Mode.ALL),
            bindings["price1"].invoke("get", ("widget",), mode=Mode.ALL),
        ]
        results = yield all_of(futures)
        return results

    proc = spawn(sim, scenario())
    sim.run(until=sim.now + 5.0)
    assert proc.done
    r0, r1 = proc.result()
    print(f"price0 received {len(r0)} replies: widget = {r0.value}")
    print(f"price1 received {len(r1)} replies: widget = {r1.value}")
    assert r0.value == r1.value == 41

    # the manager filtered duplicate copies: each call executed once
    writes = [s.servant.writes for s in inventory_servers]
    print("write counts at gy replicas:", writes, "(duplicates filtered)")
    assert writes == [1, 1, 1]
    print("\ngroup-to-group demo complete at simulated t=%.3fs" % sim.now)


if __name__ == "__main__":
    main()
