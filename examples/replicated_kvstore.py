"""Replicated key-value store: failure masking and passive failover.

Demonstrates the paper's §1 motivation — "management of replicated data for
high availability" — end to end:

1. an actively replicated store behind a *closed* group, where a replica
   crash is masked automatically (no rebinding); and
2. a passively replicated store behind a *restricted open* group with
   asynchronous forwarding (sequencer = request manager = primary, §4.2),
   where the primary's crash triggers transparent rebinding and the new
   primary carries the full state forward.

Run:  python examples/replicated_kvstore.py
"""

from repro.apps import KVStoreServant
from repro.core import BindingStyle, Mode, NewTopService, ReplicationPolicy
from repro.groupcomm import GroupConfig, Liveliness, Ordering
from repro.net import Network, Topology
from repro.orb import NameServer, ORB
from repro.sim import Simulator, spawn

FAST_DETECTION = GroupConfig(
    ordering=Ordering.ASYMMETRIC,
    liveliness=Liveliness.LIVELY,
    silence_period=20e-3,
    suspicion_timeout=100e-3,
)


def build(sim, service_name, policy, async_forwarding):
    net = Network(sim, Topology.single_lan("dc"))
    registry_orb = ORB(net.new_node(f"{service_name}-registry", "dc"))
    ns = registry_orb.register(NameServer(), object_id="NameService")

    def newtop(name):
        return NewTopService(ORB(net.new_node(name, "dc")), name_server=ns)

    servers = []
    for i in range(3):
        service = newtop(f"{service_name}-s{i}")
        servers.append(
            service.serve(
                service_name,
                KVStoreServant(),
                policy=policy,
                config=FAST_DETECTION,
                async_forwarding=async_forwarding,
            )
        )
        sim.run(until=sim.now + 0.3)
    client = newtop(f"{service_name}-client")
    return net, servers, client


def demo_active_failure_masking(sim):
    print("=== active replication, closed group: crash is masked ===")
    net, servers, client = build(sim, "kv-active", ReplicationPolicy.ACTIVE, False)
    binding = client.bind(
        "kv-active", style=BindingStyle.CLOSED, liveliness=Liveliness.LIVELY
    )
    sim.run(until=sim.now + 1.0)
    assert binding.ready.done

    def scenario():
        yield binding.invoke("put", ("alice", 100), mode=Mode.ALL)
        yield binding.invoke("put", ("bob", 200), mode=Mode.ALL)
        result = yield binding.invoke("get", ("alice",), mode=Mode.ALL)
        print(f"  before crash: {len(result)} replicas answer get(alice) = {result.value}")
        # kill one replica mid-service
        net.crash("kv-active-s2")
        print("  crashed kv-active-s2 ...")
        result = yield binding.invoke("put", ("carol", 300), mode=Mode.ALL)
        print(f"  after crash: put(carol) acknowledged by {len(result)} replicas")
        result = yield binding.invoke("keys", (), mode=Mode.ALL)
        print(f"  surviving replicas agree on keys = {result.value}")
        assert binding.rebinds == 0

    proc = spawn(sim, scenario())
    sim.run(until=sim.now + 10.0)
    assert proc.done
    survivors = [s for s in servers if s.member_id != "kv-active-s2"]
    digests = {s.servant.checksum() for s in survivors}
    print(f"  replica digests identical: {len(digests) == 1}")
    print("  no rebinding was needed (closed groups mask failures)\n")


def demo_passive_failover(sim):
    print("=== passive replication, open group: primary failover ===")
    net, servers, client = build(sim, "kv-passive", ReplicationPolicy.PASSIVE, True)
    binding = client.bind(
        "kv-passive",
        style=BindingStyle.OPEN,
        restricted=True,
        liveliness=Liveliness.LIVELY,
    )
    sim.run(until=sim.now + 1.0)
    assert binding.ready.done
    print(f"  primary / request manager: {binding.manager}")

    def scenario():
        for key, value in [("x", 1), ("y", 2), ("z", 3)]:
            yield binding.invoke("put", (key, value), mode=Mode.FIRST)
        size = yield binding.call("size", (), mode=Mode.FIRST)
        print(f"  stored {size} keys through the primary")
        net.crash("kv-passive-s0")
        print("  crashed the primary ...")
        value = yield binding.invoke("get", ("y",), mode=Mode.FIRST, timeout=10.0)
        print(f"  after failover get(y) = {value.value} via {binding.manager}")
        assert value.value == 2, "state must survive the primary's crash"

    proc = spawn(sim, scenario())
    sim.run(until=sim.now + 10.0)
    assert proc.done
    print(f"  client rebound {binding.rebinds} time(s); new primary: {binding.manager}\n")


def main():
    sim = Simulator(seed=13)
    demo_active_failure_masking(sim)
    demo_passive_failover(sim)
    print("replicated kvstore demo complete at simulated t=%.3fs" % sim.now)


if __name__ == "__main__":
    main()
