"""Quickstart: a replicated service invoked through closed and open groups.

Builds a simulated LAN, starts three replicas of the paper's random-number
service, and invokes them through the two binding styles:

- a *closed* group (the client joins a group spanning all replicas and
  multicasts requests directly), and
- an *open* group (the client pairs with one replica — its request manager —
  which re-multicasts inside the server group).

Run:  python examples/quickstart.py
"""

from repro.apps import RandomNumberServant
from repro.core import BindingStyle, Mode, NewTopService
from repro.groupcomm import GroupConfig, Ordering
from repro.net import Network, Topology
from repro.orb import NameServer, ORB
from repro.sim import Simulator, spawn


def main():
    # --- infrastructure: one LAN, a name server, three servers, a client --
    sim = Simulator(seed=7)
    net = Network(sim, Topology.single_lan("lab"))
    registry_orb = ORB(net.new_node("registry", "lab"))
    name_server = registry_orb.register(NameServer(), object_id="NameService")

    def newtop(name):
        return NewTopService(ORB(net.new_node(name, "lab")), name_server=name_server)

    servers = [newtop(f"server-{i}") for i in range(3)]
    client = newtop("client")

    # --- start the replicated service --------------------------------
    group_config = GroupConfig(ordering=Ordering.ASYMMETRIC)
    for service in servers:
        service.serve("rng", RandomNumberServant(), config=group_config)
        sim.run(until=sim.now + 0.2)  # let each member join before the next
    sim.run(until=sim.now + 0.5)
    print("server group members:", servers[0].servers["rng"].members)

    # --- closed-group invocation --------------------------------------
    closed = client.bind("rng", style=BindingStyle.CLOSED)
    sim.run(until=sim.now + 1.0)
    assert closed.ready.done

    def closed_demo():
        result = yield closed.invoke("draw", (), mode=Mode.ALL)
        print(f"closed group, wait-for-all: {len(result)} replies")
        for member, value in sorted(result.by_member().items()):
            print(f"  {member}: {value}")
        assert len(set(result.values())) == 1, "active replicas must agree"
        return result.value

    value = run(sim, closed_demo())
    print(f"replicas agree on {value} (deterministic active replication)\n")
    closed.close()

    # --- open-group invocation -----------------------------------------
    open_binding = client.bind("rng", style=BindingStyle.OPEN, restricted=True)
    sim.run(until=sim.now + 1.0)
    assert open_binding.ready.done
    print("open group request manager:", open_binding.manager)

    def open_demo():
        first = yield open_binding.call("draw", (), mode=Mode.FIRST)
        print(f"open group, wait-for-first -> {first}")
        majority = yield open_binding.invoke("draw", (), mode=Mode.MAJORITY)
        print(f"open group, wait-for-majority -> {len(majority)} replies")
        open_binding.invoke("draw", (), mode=Mode.ONE_WAY)
        print("open group, one-way send -> returned immediately")

    run(sim, open_demo())
    print("\nquickstart complete at simulated t=%.3fs" % sim.now)


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run(until=sim.now + 5.0)
    assert proc.done, "demo did not finish"
    return proc.result()


if __name__ == "__main__":
    main()
