"""Transactional replication: concurrent bank transfers (ref [16]).

Three replicas of a transactional account store; two tellers issue
transfers concurrently through closed-group bindings.  Optimistic commits
travel as single totally ordered invocations, so every replica reaches the
same verdict for every transaction — conflicting transfers abort and retry,
money is conserved, and the replicas stay byte-identical.

Run:  python examples/bank_transfers.py
"""

from repro.apps import TransactionClient, TransactionalStoreServant, TxAborted
from repro.core import BindingStyle, Mode, NewTopService
from repro.net import Network, Topology
from repro.orb import NameServer, ORB
from repro.sim import Simulator, all_of, spawn

ACCOUNTS = {"alice": 500, "bob": 300, "carol": 200}


def main():
    sim = Simulator(seed=4)
    net = Network(sim, Topology.single_lan("bank"))
    ns = ORB(net.new_node("registry", "bank")).register(NameServer())

    def newtop(name):
        return NewTopService(ORB(net.new_node(name, "bank")), name_server=ns)

    replicas = []
    for i in range(3):
        service = newtop(f"vault{i}")
        replicas.append(service.serve("accounts", TransactionalStoreServant()))
        sim.run(until=sim.now + 0.3)
    tellers = [newtop("teller0"), newtop("teller1")]
    bindings = [t.bind("accounts", style=BindingStyle.CLOSED) for t in tellers]
    sim.run(until=sim.now + 1.0)
    assert all(b.ready.done for b in bindings)
    clients = [TransactionClient(b) for b in bindings]

    # --- seed the accounts -------------------------------------------------
    def seed():
        tx = clients[0].begin()
        for account, balance in ACCOUNTS.items():
            tx.write(account, balance)
        yield tx.commit(mode=Mode.ALL)

    run(sim, seed())
    print("opening balances:", ACCOUNTS)

    # --- two tellers transfer concurrently (and conflict on 'bob') --------
    stats = {"commits": 0, "retries": 0}

    def transfer(client, src, dst, amount):
        def proc():
            for _attempt in range(10):
                tx = client.begin()
                src_balance = yield tx.read(src)
                dst_balance = yield tx.read(dst)
                if src_balance < amount:
                    tx.abort()
                    return False
                tx.write(src, src_balance - amount)
                tx.write(dst, dst_balance + amount)
                try:
                    yield tx.commit(mode=Mode.MAJORITY)
                except TxAborted:
                    stats["retries"] += 1
                    continue
                stats["commits"] += 1
                return True
            return False

        return proc()

    transfers = [
        spawn(sim, transfer(clients[0], "alice", "bob", 120)),
        spawn(sim, transfer(clients[1], "bob", "carol", 80)),
        spawn(sim, transfer(clients[0], "bob", "alice", 40)),
        spawn(sim, transfer(clients[1], "carol", "alice", 60)),
    ]
    sim.run(until=sim.now + 10.0)
    assert all(t.done and t.result() for t in transfers), "a transfer failed"
    print(f"4 transfers committed ({stats['retries']} optimistic retries)")

    # --- verify conservation and replica agreement ------------------------
    def audit():
        tx = clients[1].begin()
        balances = {}
        for account in ACCOUNTS:
            balances[account] = yield tx.read(account)
        tx.abort()  # read-only: nothing to commit
        return balances

    balances = run(sim, audit())
    print("closing balances:", balances)
    assert sum(balances.values()) == sum(ACCOUNTS.values()), "money leaked!"
    sim.run(until=sim.now + 1.0)
    digests = {r.servant.checksum() for r in replicas}
    print("replicas identical:", len(digests) == 1)
    print("per-replica commits/aborts:",
          [(r.servant.commits, r.servant.aborts) for r in replicas])
    assert len(digests) == 1
    print("\nbank demo complete at simulated t=%.3fs" % sim.now)


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run(until=sim.now + 10.0)
    assert proc.done, "process did not finish"
    return proc.result()


if __name__ == "__main__":
    main()
