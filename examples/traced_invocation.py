"""Tracing demo: follow one open-group invocation end to end.

Enables span recording (``Observability(trace=True)``), runs a single client
request through an open group of three replicas, and renders the resulting
causal trace as a virtual-time timeline: client stub -> m1 multicast to the
request manager -> m2 manager re-multicast -> per-replica execute (m3) ->
reply gathering -> m6 reply set back to the client (the paper's fig. 9 path).

Also prints the metrics snapshot and the per-kind traffic reconciliation
(every gc-layer send must equal exactly one recorded network hop).

Run:  python examples/traced_invocation.py
"""

import os

from repro.apps import RandomNumberServant
from repro.core import BindingStyle, Mode, NewTopService
from repro.groupcomm import GroupConfig, Ordering
from repro.net import Network, Topology
from repro.obs import (
    Observability,
    build_trees,
    reconcile_traffic,
    render_metrics_table,
    render_timeline,
    spans_by_trace,
)
from repro.orb import NameServer, ORB
from repro.sim import Simulator, spawn


def main():
    obs = Observability(trace=True)  # metrics are always on; spans opt in
    sim = Simulator(seed=7, obs=obs)
    net = Network(sim, Topology.single_lan("lab"))
    registry_orb = ORB(net.new_node("registry", "lab"))
    name_server = registry_orb.register(NameServer(), object_id="NameService")

    def newtop(name):
        return NewTopService(ORB(net.new_node(name, "lab")), name_server=name_server)

    servers = [newtop(f"s{i}") for i in range(3)]
    client = newtop("client")

    for service in servers:
        service.serve("rng", RandomNumberServant(),
                      config=GroupConfig(ordering=Ordering.ASYMMETRIC))
        sim.run(until=sim.now + 0.2)
    sim.run(until=sim.now + 0.5)

    binding = client.bind("rng", style=BindingStyle.OPEN, restricted=True)
    sim.run(until=sim.now + 1.0)
    assert binding.ready.done

    def demo():
        result = yield binding.invoke("draw", (), mode=Mode.ALL)
        print(f"invocation returned {len(result)} replies: {result.value}\n")

    proc = spawn(sim, demo())
    sim.run(until=sim.now + 5.0)
    assert proc.done

    # --- render the invocation's causal trace --------------------------
    traces = spans_by_trace(obs.trace_records())
    invocations = {
        trace: spans
        for trace, spans in traces.items()
        if any(span["name"] == "invoke" for span in spans)
    }
    print(f"recorded {len(traces)} traces; {len(invocations)} are client invocations")
    for trace, spans in invocations.items():
        roots, _ = build_trees(spans)
        print(f"\n=== trace {trace}: {len(spans)} spans, "
              f"{len(roots)} root ({roots[0]['name']}) ===")
        print(render_timeline(spans))

    out_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "out",
        "traced_invocation.jsonl",
    )
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    written = obs.dump_trace(out_path)
    print(f"\nwrote {written} spans to {os.path.relpath(out_path)}")

    # --- metrics + traffic reconciliation ------------------------------
    snapshot = obs.metrics_snapshot()
    print("\n=== metrics ===")
    print(render_metrics_table(snapshot))
    print("\ntraffic reconciliation (gc sends vs net hops):")
    for kind, (sent, hops) in sorted(reconcile_traffic(snapshot).items()):
        status = "ok" if sent == hops else f"MISMATCH ({sent - hops:+d})"
        print(f"  {kind:12s} gc={sent:<6d} net={hops:<6d} {status}")


if __name__ == "__main__":
    main()
